"""Worker-resident factor service for the partially-averaged preconditioner.

The PR-5 parallel layer parallelised the *builds* of
:class:`~repro.linalg.preconditioners.BlockCirculantFastPreconditioner`
(eager batch factorisation on a thread pool) but left every *apply* serial:
SuperLU factor objects cannot cross a process boundary, so the
``n_slow // 2 + 1`` per-harmonic back-substitutions of each GMRES
preconditioner apply ran one after another in the parent.  This module
inverts the ownership instead of shipping the factors:

* each forked worker **owns** a contiguous slice of the distinct slow
  harmonics (``shard_ranges(n_slow // 2 + 1, n_workers)``),
* the worker factors its slice *in-worker* from shared-memory copies of the
  two real base matrices (``B_k = base + mu_k * C_blk``; only the CSC
  ``data`` arrays cross per rebuild — the sparsity structure is inherited
  once through ``fork``), through the same
  :func:`~repro.linalg.preconditioners.factor_harmonic_system` recipe the
  in-process path uses, so the factors are bitwise identical,
* one preconditioner apply becomes one broadcast: the parent FFTs, writes
  the distinct-harmonic spectrum into a shared block, sends every worker a
  tiny ``("solve", m)`` command, the workers back-substitute their harmonic
  ranges concurrently into the shared solution block, and the parent
  mirrors the conjugate harmonics and IFFTs.

Because the preconditioner is rebuilt at every Newton iterate
(``cheap_rebuild``), the workers are *resident*: they persist across
rebuilds (and solves) and refactor in place from the refreshed shared data,
so the fork cost is paid once per solver, not once per iterate.

Failure handling mirrors the sharded evaluation pool
(:class:`~repro.parallel.pool.ShardedKernelPool`): every reply gather runs
under the ``reply_timeout_s`` watchdog, a crashed worker is detected
immediately through its closed pipe, and any failure tears the pool down
(SIGTERM escalating to SIGKILL, shared blocks unlinked).  Failures are then
**supervised** rather than sticky-fatal: a
:class:`~repro.resilience.supervisor.PoolSupervisor` (driven by the
:class:`~repro.utils.options.RestartPolicy` handed to the constructor)
re-forks the workers after an exponential backoff, refactors them from the
last configured matrices, runs a parity health-probe (harmonic 0 solved
in-worker must match the in-process factorisation bit-for-bit) and retries
the failed command — the consuming preconditioner never observes a healed
failure.  Only once the restart budget is exhausted does the service
disable itself *stickily* with the reason recorded in
:attr:`fallback_reason` (``"disabled (budget exhausted): ..."``); the
consumer then finishes on lazily-factored in-process solvers and
``MPDEStats.parallel_fallback_reason`` surfaces the reason.  The
``"worker.eval"`` fault-injection site is visited (with ``role="factor"``)
before every factor/solve command, so the ``worker_crash`` /
``worker_hang`` profiles exercise these paths inside real forked workers.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref

import numpy as np
import scipy.sparse as sp

from ..resilience.faultinject import fault_site
from ..resilience.supervisor import PoolSupervisor
from ..utils.logging import get_logger
from ..utils.options import RestartPolicy
from .pool import WorkerPoolError, _shutdown_pool
from .sharding import SharedArray, attach_shared_array, shard_ranges

__all__ = ["ResidentFactorPool"]

_LOG = get_logger("parallel.factor_service")


def _factor_worker_main(
    conn,
    index: int,
    lo: int,
    hi: int,
    shape,
    base_structure,
    c_structure,
    lam_slow,
    block_names,
    block_shapes,
) -> None:
    """Worker loop: own harmonics ``[lo, hi)``, factor and back-substitute.

    Runs in a forked child.  The CSC structure arrays and the slow
    eigenvalues arrive through ``fork`` inheritance (they never change for
    a given service generation); the matrix *values* and the per-apply
    spectra cross through the named shared-memory blocks.  Commands are
    tiny picklable tuples; replies are ``("ok", payload)`` /
    ``("error", message)``.

    Like the sharded evaluation workers, the child inherits any armed
    fault-injection plan — the ``"worker.eval"`` site (``role="factor"``)
    runs before every command, so crash/hang faults fire inside a real
    worker.
    """
    # Defer the linalg import to the child's first use?  No — resolve it at
    # startup: the parent already imported it (the service is handed base
    # matrices built by the preconditioner), so fork shares the module.
    from ..linalg.preconditioners import factor_harmonic_system

    attachments = {}
    try:
        views = {}
        for tag in ("base", "c", "rhs", "sol"):
            view, shm = attach_shared_array(block_names[tag], block_shapes[tag])
            attachments[tag] = shm
            views[tag] = view
        base_indices, base_indptr = base_structure
        c_indices, c_indptr = c_structure
        solvers = {}

        def refactor() -> tuple[bool, float]:
            # Fresh CSC wrappers around the shared data views: the add in
            # factor_harmonic_system allocates new arrays, so no factor ever
            # aliases the shared pages the parent overwrites on the next
            # rebuild.
            base = sp.csc_matrix(
                (views["base"], base_indices, base_indptr), shape=shape
            )
            c_blk = sp.csc_matrix((views["c"], c_indices, c_indptr), shape=shape)
            degraded = False
            started = time.perf_counter()
            for k in range(lo, hi):
                solvers[k], harmonic_degraded = factor_harmonic_system(
                    base, c_blk, lam_slow[k], harmonic=k
                )
                degraded |= harmonic_degraded
            return degraded, time.perf_counter() - started

        def solve(m: int) -> float:
            started = time.perf_counter()
            for k in range(lo, hi):
                # The float block stores complex values as interleaved
                # re/im pairs along the last axis; the contiguous copy +
                # complex view reproduces the exact (m, size) spectrum rows
                # the parent packed, and the transposition below restores
                # the (size, m) column layout the in-process loop feeds its
                # solver — bitwise the same back-substitution inputs.
                rhs = np.ascontiguousarray(views["rhs"][k, :m, :]).view(
                    np.complex128
                )
                if m == 1:
                    solution = solvers[k](rhs[0])
                    views["sol"][k, 0, :] = solution.view(np.float64)
                else:
                    solution = solvers[k](np.ascontiguousarray(rhs.T))
                    views["sol"][k, :m, :] = np.ascontiguousarray(
                        solution.T
                    ).view(np.float64)
            return time.perf_counter() - started

        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent went away
                break
            command = message[0]
            if command == "stop":
                break
            try:
                fault_site(
                    "worker.eval", worker=index, lo=lo, hi=hi, role="factor"
                )
                if command == "factor":
                    conn.send(("ok", refactor()))
                elif command == "solve":
                    conn.send(("ok", solve(message[1])))
                else:
                    raise ValueError(f"unknown factor-worker command {command!r}")
            except BaseException as exc:  # noqa: BLE001 - reported to the parent
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        for shm in attachments.values():
            shm.close()
        conn.close()


class ResidentFactorPool:
    """Forked workers owning (and applying) the per-harmonic LU factors.

    A lightweight handle at construction — no processes, no shared memory.
    The first :meth:`configure` call forks the workers (one per non-empty
    harmonic shard, at most ``n_workers``) and has them factor their
    slices; later ``configure`` calls with the same sparsity structure just
    refresh the shared data blocks and broadcast a refactor, so the
    per-Newton-iterate rebuild of the consuming preconditioner reuses the
    resident processes.  :meth:`solve` serves one batched apply.

    The service is *supervised-failing*: a worker crash, hang (reply
    watchdog expiry) or error reply tears the pool down and hands the
    failure to the :class:`~repro.resilience.supervisor.PoolSupervisor`,
    which re-forks, refactors, parity-probes and retries transparently
    (recorded on :attr:`supervisor` ``.trace``).  Only once the
    :class:`~repro.utils.options.RestartPolicy` budget is exhausted does
    the service record why in :attr:`fallback_reason`, flip :attr:`active`
    off permanently and raise
    :class:`~repro.parallel.pool.WorkerPoolError` — consumers then fall
    back to their in-process path and report the reason
    (``MPDEStats.parallel_fallback_reason``), mirroring the sharded
    evaluation pool's contract.

    Parameters
    ----------
    n_workers:
        Worker-process budget (>= 1; resolution against the environment
        happens upstream in
        :func:`~repro.parallel.backends.resolve_execution`).  At most
        ``n_slow // 2 + 1`` workers are actually forked — a worker with an
        empty harmonic shard would only cost dispatch time.
    reply_timeout_s:
        Watchdog budget (seconds) for gathering *all* worker replies of one
        command broadcast, shared across the gather like the evaluation
        pool's.  ``None`` disables the watchdog (blocking reads).
    restart_policy:
        :class:`~repro.utils.options.RestartPolicy` for the supervised
        self-healing (``None`` uses the policy defaults;
        ``RestartPolicy(max_restarts=0)`` restores the pre-supervision
        first-failure-disables behaviour).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        reply_timeout_s: float | None = 120.0,
        restart_policy: RestartPolicy | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.reply_timeout_s = reply_timeout_s
        #: Why the service disabled itself ("" while healthy).
        self.fallback_reason = ""
        #: Worker generations forked for *structural* reasons: the first
        #: :meth:`configure`, and each later one whose CSC sparsity
        #: structure differs from the resident one (the structure arrays
        #: are inherited through ``fork``, so they cannot be refreshed in
        #: place).  Note the structure *can* legitimately drift between
        #: Newton iterates: scipy's sparse add prunes exactly-zero entries,
        #: so e.g. a MOSFET crossing into cutoff changes ``base``'s
        #: pattern.  A refork costs a few milliseconds against the
        #: ``half + 1`` LU factorisations that follow it, so this stays
        #: cheap; the counter makes it observable.  Fault-recovery reforks
        #: are counted separately on :attr:`heals` — telemetry must not
        #: conflate "the problem changed shape" with "a worker died".
        self.restarts = 0
        #: Supervised self-healing state: restart policy, attempt budget
        #: and the :class:`~repro.resilience.supervisor.SupervisorEvent`
        #: trace of every heal / exhaustion episode.
        self.supervisor = PoolSupervisor("factor_service", restart_policy)
        self._disabled = False
        self._structure = None
        self._last_config = None
        self._workers: list[tuple[object, object]] = []
        self._buffers: dict[str, SharedArray] = {}
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._workers, self._buffers
        )

    @property
    def heals(self) -> int:
        """Successful supervised heals (fault-recovery re-forks that passed
        the parity probe), as opposed to the structure-change re-forks
        counted by :attr:`restarts`."""
        return self.supervisor.heals

    # -- lifecycle ---------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the service may (still) be used.

        True from construction until the first failure — including before
        the first :meth:`configure`, which is what forks the workers.
        """
        return not self._disabled

    @property
    def resident(self) -> bool:
        """Whether worker processes are currently running."""
        return bool(self._workers)

    def close(self) -> None:
        """Stop the workers and unlink the shared blocks (idempotent).

        A closed-but-healthy service may be configured again (it re-forks);
        a *failed* service stays disabled.
        """
        self._structure = None
        _shutdown_pool(self._workers, self._buffers)

    def _disable(self, reason: str) -> None:
        self._disabled = True
        self.fallback_reason = reason
        _LOG.warning("resident factor service disabled: %s", reason)
        self.close()

    # -- worker protocol ---------------------------------------------------
    def _broadcast(self, message) -> list:
        """Send ``message`` to every worker; gather payloads under the watchdog.

        Returns one ``("ok", payload)`` payload per worker.  Any failure —
        broken pipe on send, watchdog expiry, closed pipe (dead worker) or
        an ``("error", ...)`` reply — tears the pool down and raises
        :class:`WorkerPoolError`; the *public* entry points route that
        through the supervisor (heal or, budget exhausted, sticky disable).
        """
        try:
            for _process, conn in self._workers:
                conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise WorkerPoolError(f"factor-service worker died: {exc!r}") from exc
        reply_deadline = (
            None
            if self.reply_timeout_s is None
            else time.monotonic() + self.reply_timeout_s
        )
        payloads = []
        errors = []
        for _process, conn in self._workers:
            try:
                if reply_deadline is not None:
                    remaining = reply_deadline - time.monotonic()
                    if remaining <= 0.0 or not conn.poll(remaining):
                        self.close()
                        raise WorkerPoolError(
                            "factor-service worker reply timed out after "
                            f"{self.reply_timeout_s:.3g}s (hung worker); "
                            "pool torn down"
                        )
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise WorkerPoolError(f"factor-service worker died: {exc!r}") from exc
            if reply[0] == "error":
                errors.append(reply[1])
            else:
                payloads.append(reply[1])
        if errors:
            self.close()
            raise WorkerPoolError(f"factor-service worker error: {errors[0]}")
        return payloads

    # -- configuration -----------------------------------------------------
    def _matches(self, base: sp.csc_matrix, c_blk: sp.csc_matrix, lam_slow) -> bool:
        """Whether the resident workers' inherited structure still applies.

        The data blocks can be refreshed in place only when the CSC
        sparsity structures and the eigenvalue set are unchanged — compared
        exactly (an O(nnz) memcmp, trivial against a factorisation) so a
        cancellation-induced structure change can never silently corrupt
        the factors.
        """
        s = self._structure
        return (
            s is not None
            and s["shape"] == base.shape
            and np.array_equal(s["lam"], lam_slow)
            and np.array_equal(s["base_indices"], base.indices)
            and np.array_equal(s["base_indptr"], base.indptr)
            and np.array_equal(s["c_indices"], c_blk.indices)
            and np.array_equal(s["c_indptr"], c_blk.indptr)
        )

    def _restart(
        self, base: sp.csc_matrix, c_blk: sp.csc_matrix, lam_slow, *, heal: bool = False
    ) -> None:
        """(Re)fork the workers for a new matrix structure.

        ``heal=True`` marks a supervised fault-recovery refork (counted via
        :attr:`heals` on probe success); the default marks a
        structure-change refork (counted on :attr:`restarts`).
        """
        self.close()
        if not heal:
            self.restarts += 1
        n_slow = int(np.asarray(lam_slow).size)
        half = n_slow // 2
        n_unknowns_total = int(base.shape[0])
        # Private copies of the structure arrays: the workers inherit them
        # through fork and the parent compares later rebuilds against them,
        # so neither side may alias the caller's (mutable) matrices.
        structure = {
            "shape": base.shape,
            "lam": np.array(lam_slow, dtype=complex, copy=True),
            "base_indices": base.indices.copy(),
            "base_indptr": base.indptr.copy(),
            "c_indices": c_blk.indices.copy(),
            "c_indptr": c_blk.indptr.copy(),
        }
        self._buffers["base"] = SharedArray((int(base.data.size),))
        self._buffers["c"] = SharedArray((int(c_blk.data.size),))
        # Complex values live in the float64 blocks as interleaved re/im
        # pairs (complex128 viewed as float64 doubles the last axis); the
        # middle axis holds up to two RHS columns — the real/imaginary
        # parts of a complex apply share one sweep.
        spectra_shape = (half + 1, 2, 2 * n_unknowns_total)
        self._buffers["rhs"] = SharedArray(spectra_shape)
        self._buffers["sol"] = SharedArray(spectra_shape)
        block_names = {tag: buf.name for tag, buf in self._buffers.items()}
        block_shapes = {tag: buf.shape for tag, buf in self._buffers.items()}
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API variations
            pass
        context = multiprocessing.get_context("fork")
        for index, (lo, hi) in enumerate(
            shard_ranges(half + 1, min(self.n_workers, half + 1))
        ):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_factor_worker_main,
                args=(
                    child_conn,
                    index,
                    lo,
                    hi,
                    structure["shape"],
                    (structure["base_indices"], structure["base_indptr"]),
                    (structure["c_indices"], structure["c_indptr"]),
                    structure["lam"],
                    block_names,
                    block_shapes,
                ),
                daemon=True,
                name=f"repro-factor-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))
        self._structure = structure

    def configure(self, base, c_blk, lam_slow) -> bool:
        """Point the workers at fresh base matrices and have them refactor.

        ``base`` / ``c_blk`` are the consuming preconditioner's real CSC
        matrices (``B_k = base + mu_k * c_blk``), ``lam_slow`` its slow
        eigenvalues.  Workers are forked on first use (or when the sparsity
        structure changes); otherwise only the CSC ``data`` arrays cross —
        one memcpy each into the shared blocks plus a broadcast.  Returns
        whether any worker's factorisation degraded to the dense
        pseudo-inverse fallback.  Raises :class:`WorkerPoolError` (after
        disabling the service) on any worker failure.
        """
        if self._disabled:
            raise WorkerPoolError(
                self.fallback_reason or "resident factor service is disabled"
            )
        base = sp.csc_matrix(base)
        c_blk = sp.csc_matrix(c_blk)
        if not self._matches(base, c_blk, lam_slow):
            self._restart(base, c_blk, lam_slow)
        np.copyto(self._buffers["base"].array, base.data)
        np.copyto(self._buffers["c"].array, c_blk.data)
        try:
            payloads = self._broadcast(("factor",))
        except WorkerPoolError as exc:
            payloads = self._heal(str(exc), base, c_blk, lam_slow)
        self._last_config = (
            base,
            c_blk,
            np.array(lam_slow, dtype=complex, copy=True),
        )
        return any(degraded for degraded, _elapsed in payloads)

    # -- application -------------------------------------------------------
    def solve(self, packed: np.ndarray) -> tuple[np.ndarray, float]:
        """One batched apply: back-substitute every distinct harmonic.

        ``packed`` is the C-contiguous complex ``(half + 1, m, size)``
        block of distinct-harmonic spectra (``m`` = 1 for a real apply, 2
        for the shared real/imaginary sweep of a complex one).  Returns
        ``(solutions, backsub_s)`` of the same shape plus the workers'
        critical-path (slowest shard) back-substitution time — the caller
        books the rest of the wall clock as dispatch overhead.
        """
        if self._disabled or not self._workers:
            raise WorkerPoolError(
                self.fallback_reason or "resident factor service is not configured"
            )
        m = int(packed.shape[1])
        while True:
            self._buffers["rhs"].array[:, :m, :] = packed.view(np.float64)
            try:
                payloads = self._broadcast(("solve", m))
                break
            except WorkerPoolError as exc:
                if self._last_config is None:
                    self._disable(f"factor-service solve failed unconfigured: {exc}")
                    raise WorkerPoolError(self.fallback_reason) from exc
                # _heal raises (after disabling) once the restart budget is
                # exhausted; on success the loop rewrites the rhs block (the
                # refork reallocated the shared buffers) and retries.
                self._heal(str(exc), *self._last_config)
        solutions = np.array(self._buffers["sol"].array[:, :m, :], copy=True).view(
            np.complex128
        )
        return solutions, max(payloads)

    # -- supervised healing ------------------------------------------------
    def _heal(self, reason: str, base, c_blk, lam_slow) -> list:
        """Route a pool failure through the supervisor.

        Each restart attempt re-forks the workers (``heal=True`` — counted
        apart from structure reforks), refreshes the shared matrix data,
        broadcasts a refactor and parity-probes the result; any step
        failing burns the attempt.  Returns the factor payloads of the
        healed generation, or — once the
        :class:`~repro.utils.options.RestartPolicy` budget is spent —
        disables the service stickily and raises :class:`WorkerPoolError`.
        """
        state = {}

        def restart() -> None:
            self._restart(base, c_blk, lam_slow, heal=True)
            np.copyto(self._buffers["base"].array, base.data)
            np.copyto(self._buffers["c"].array, c_blk.data)
            state["payloads"] = self._broadcast(("factor",))

        def probe() -> bool:
            return self._probe_parity(base, c_blk, lam_slow)

        disabled_reason = self.supervisor.handle_failure(
            reason, restart=restart, probe=probe
        )
        if disabled_reason is not None:
            self._disable(disabled_reason)
            raise WorkerPoolError(disabled_reason)
        return state["payloads"]

    def _probe_parity(self, base, c_blk, lam_slow) -> bool:
        """Cheap parity health-probe of a freshly healed pool.

        Broadcasts one single-column solve whose harmonic-0 right-hand side
        is all-ones (the other harmonics solve zeros — just back-
        substitution) and demands the worker's solution match the
        in-process :func:`~repro.linalg.preconditioners
        .factor_harmonic_system` factorisation **bit-for-bit** — the same
        parity contract the service is admitted to the solve path under.
        One in-parent LU of harmonic 0 is the probe's whole cost, paid only
        on the (rare) heal events.
        """
        from ..linalg.preconditioners import factor_harmonic_system

        size = int(base.shape[0])
        probe_rhs = np.ones(size, dtype=np.complex128)
        rhs_block = self._buffers["rhs"].array
        rhs_block[:, :1, :] = 0.0
        rhs_block[0, 0, :] = probe_rhs.view(np.float64)
        self._broadcast(("solve", 1))  # raises on failure -> probe failed
        got = np.array(self._buffers["sol"].array[0, :1, :], copy=True).view(
            np.complex128
        )[0]
        solver, _degraded = factor_harmonic_system(
            base, c_blk, lam_slow[0], harmonic=0
        )
        return np.array_equal(got, solver(probe_rhs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResidentFactorPool(n_workers={self.n_workers}, "
            f"resident={self.resident}, active={self.active})"
        )
