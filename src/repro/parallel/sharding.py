"""Shard geometry and the shared-memory array protocol.

Two small building blocks the process pool is made of:

* :func:`shard_ranges` — the one definition of how a ``P``-point axis is
  split into contiguous worker shards.  Both the dispatcher and the tests
  use it, so the "P not divisible by the shard count" case cannot drift
  between them.
* :class:`SharedArray` / :func:`attach_shared_array` — the shared-memory
  array protocol.  The parent allocates named ``float64`` blocks
  (:class:`SharedArray`); workers attach by name and view the same pages as
  NumPy arrays, so a ``(P, n)`` state array crosses the process boundary as
  one ``memcpy`` into the block plus a 60-byte command message — never a
  pickle of the data.

The parent owns every block's lifetime (it created it and unlinks it), so
worker-side attachment must not enroll the segment in the worker's
``resource_tracker``.  Before Python 3.13 attaching never tracks; from 3.13
on, tracking on attach is switched off explicitly (``track=False``).
"""

from __future__ import annotations

import numpy as np
from multiprocessing import shared_memory

__all__ = ["SharedArray", "attach_shared_array", "shard_ranges"]


def shard_ranges(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_shards`` balanced contiguous ranges.

    Returns ``n_shards`` ``(lo, hi)`` half-open ranges covering
    ``[0, n_items)`` in order; when ``n_items`` is not divisible by
    ``n_shards`` the first ``n_items % n_shards`` ranges are one item
    longer, and when ``n_items < n_shards`` the trailing ranges are empty
    (``lo == hi``) — callers skip those.
    """
    n_items = int(n_items)
    n_shards = int(n_shards)
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    base, extra = divmod(n_items, n_shards)
    ranges = []
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class SharedArray:
    """A parent-owned shared-memory ``float64`` array.

    The parent creates the block and is responsible for unlinking it
    (:meth:`close`); workers attach read/write views by ``name`` through
    :func:`attach_shared_array`.  The wrapped :attr:`array` is an ordinary
    C-contiguous NumPy array backed by the shared pages.
    """

    __slots__ = ("name", "shape", "array", "_shm")

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = tuple(int(s) for s in shape)
        n_bytes = max(1, int(np.prod(self.shape, dtype=np.int64)) * 8)
        self._shm = shared_memory.SharedMemory(create=True, size=n_bytes)
        self.name = self._shm.name
        self.array = np.ndarray(self.shape, dtype=np.float64, buffer=self._shm.buf)

    def close(self) -> None:
        """Release the view and unlink the block (idempotent)."""
        if self._shm is None:
            return
        self.array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


def attach_shared_array(
    name: str, shape: tuple[int, ...]
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Worker-side view of a parent-created :class:`SharedArray`.

    Returns the NumPy view plus the attachment handle the caller must keep
    alive (and :meth:`~multiprocessing.shared_memory.SharedMemory.close`
    when done) — the view borrows the handle's buffer.
    """
    try:
        # The parent owns (and unlinks) the block; see the module docstring.
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: attaching never tracks
        shm = shared_memory.SharedMemory(name=name)
    view = np.ndarray(tuple(int(s) for s in shape), dtype=np.float64, buffer=shm.buf)
    return view, shm
