"""Pluggable parallel execution layer (PR 5).

The two independent work axes the MPDE/HB formulation exposes — the
``P = n_fast * n_slow`` hyperplane grid points of the batched evaluation
engine and the ``n_slow // 2 + 1`` per-slow-harmonic LU factorisations of
the partially-averaged preconditioner — are embarrassingly parallel.  This
package provides the execution machinery both hot paths share:

* :mod:`~repro.parallel.backends` — environment capability detection and
  the one resolution rule mapping ``(backend, n_workers)`` requests onto
  what actually runs (with recorded fallback reasons);
* :mod:`~repro.parallel.sharding` — shard geometry and the shared-memory
  array protocol;
* :mod:`~repro.parallel.pool` — the forked :class:`ShardedKernelPool` for
  engine evaluation and the thread :class:`WorkerPool` for in-process
  fan-out (LU factor objects cannot cross a process boundary);
* :mod:`~repro.parallel.factor_service` — the worker-resident
  :class:`ResidentFactorPool` that sidesteps that pickling limit by having
  each forked worker *own* (factor and back-substitute) a slice of the
  preconditioner's slow harmonics, parallelising the applies too
  (``MPDEOptions(factor_backend="resident")``).

Entry points for users are the option knobs, not this package:
``EvaluationOptions(kernel_backend="sharded", n_workers=...)`` at
``Circuit.compile`` and ``MPDEOptions(parallel=True, n_workers=...)`` on the
solvers.  See ``docs/parallel.md`` for when sharding pays.
"""

from .backends import (
    KERNEL_BACKENDS,
    Capabilities,
    ResolvedExecution,
    detect_capabilities,
    resolve_execution,
)
from .factor_service import ResidentFactorPool
from .pool import ShardedKernelPool, WorkerPool, WorkerPoolError
from .sharding import SharedArray, attach_shared_array, shard_ranges

__all__ = [
    "KERNEL_BACKENDS",
    "Capabilities",
    "ResidentFactorPool",
    "ResolvedExecution",
    "SharedArray",
    "ShardedKernelPool",
    "WorkerPool",
    "WorkerPoolError",
    "attach_shared_array",
    "detect_capabilities",
    "resolve_execution",
    "shard_ranges",
]
