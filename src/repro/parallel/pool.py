"""Process/thread pools for the parallel execution layer.

Two pool flavours, matched to what each hot path can physically ship across
an execution boundary:

* :class:`ShardedKernelPool` — persistent **forked worker processes** for
  the batched evaluation engine.  Each worker inherits the compiled
  :class:`~repro.circuits.engine.BatchedEvaluationEngine` through ``fork``
  (the class kernels are closures, so they could never be pickled to a
  ``spawn`` pool) and evaluates a contiguous shard of the ``P`` grid-point
  axis.  State and results cross the boundary through the shared-memory
  array protocol (:mod:`repro.parallel.sharding`): per evaluation the parent
  copies ``X`` into a named block once, sends each worker a tiny command
  tuple, and the workers write their ``(hi - lo, width)`` result rows
  straight into the shared output blocks.  Because every engine operation is
  elementwise along the ``P`` axis, a sharded evaluation is **bit-for-bit
  equal** to the serial one — the shard boundaries cannot change a single
  ulp (property-tested in ``tests/test_parallel.py``).
* :class:`WorkerPool` — a small **thread** fan-out for work whose *results*
  cannot cross a process boundary at all: SuperLU factor objects.  The
  partially-averaged preconditioner's per-slow-harmonic factorisations are
  independent, so they fan out over this pool in its eager mode; the factor
  handles stay usable in the parent because threads share the heap.  (How
  much the factorisations actually overlap depends on SciPy releasing the
  GIL inside SuperLU; the semantics — counts, results — are identical either
  way, which is what the tests pin down.)

Pools are built once per owner (one :class:`ShardedKernelPool` per compiled
``MNASystem``, one :class:`WorkerPool` per solver instance) and reused across
evaluations, so the fork/startup cost is amortised over a whole Newton solve
rather than paid per call.  Every failure path degrades, not crashes: a
worker that raises (or dies) surfaces as :class:`WorkerPoolError` after the
pool has torn itself down, and the ``MNASystem`` wiring hands the failure to
a :class:`~repro.resilience.supervisor.PoolSupervisor` — the pool is
restarted with exponential backoff and re-admitted after a bit-for-bit
parity health-probe, and only an exhausted
:class:`~repro.utils.options.RestartPolicy` budget falls back *permanently*
to the serial path (both outcomes recorded on
``MPDEStats.parallel_fallback_reason`` / ``MPDEStats.supervisor_trace``).

Importing this module probes the environment once
(:func:`~repro.parallel.backends.detect_capabilities`) and logs a single
warning when auto-selected sharding is off the table (single CPU, no
``fork``) — constrained CI runners then run the serial backend everywhere
without further noise.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from typing import Callable, Iterable, Sequence

import numpy as np

from ..resilience.faultinject import fault_site
from ..utils.logging import get_logger
from .backends import detect_capabilities
from .sharding import SharedArray, attach_shared_array, shard_ranges

__all__ = ["ShardedKernelPool", "WorkerPool", "WorkerPoolError"]

_LOG = get_logger("parallel.pool")

# Satellite requirement: constrained environments are detected *at import*
# and warned about exactly once; every later auto resolution silently picks
# the serial backend.
_IMPORT_CAPABILITIES = detect_capabilities()
if _IMPORT_CAPABILITIES.serial_only_reason is not None:
    _LOG.warning(
        "parallel execution layer: %s; auto-selected execution stays on the "
        "serial backend (explicit n_workers >= 2 still forces worker pools)",
        _IMPORT_CAPABILITIES.serial_only_reason,
    )


class WorkerPoolError(RuntimeError):
    """A worker raised or died (the pool has already torn itself down).

    Callers route this through their :class:`PoolSupervisor` — heal and
    retry, or fall back to serial once the restart budget is exhausted.
    """


class WorkerPool:
    """Thread fan-out for tasks whose results must stay in-process.

    The one consumer today is the eager batch-factorisation mode of
    :class:`~repro.linalg.preconditioners.BlockCirculantFastPreconditioner`:
    SuperLU factor objects are process-local, so the per-harmonic
    factorisations run on threads sharing the parent heap.  :meth:`map`
    preserves input order; on failure it re-raises the exception of the
    *lowest failing item index* (deterministic, not thread-timing-dependent),
    annotated with that index — a ``failed_item_index`` attribute plus an
    exception note — so diagnostics can name e.g. the failing harmonic.
    Failures from other shards are logged, never silently discarded.

    The threads are spawned per :meth:`map` call and joined before it
    returns — deliberately, not a kept-alive executor: no thread of this
    pool ever outlives a call, so a later ``fork`` (another system starting
    its :class:`ShardedKernelPool`) always happens from an effectively
    single-threaded process.  Spawning a handful of threads costs
    microseconds against the millisecond-scale factorisations they run.
    """

    def __init__(self, n_workers: int) -> None:
        self.n_workers = max(1, int(n_workers))

    @staticmethod
    def _call_one(fn: Callable, items: list, index: int):
        """``fn(items[index])`` with the item index attached on failure."""
        try:
            return fn(items[index])
        except BaseException as exc:  # noqa: BLE001 - annotated and re-raised
            try:
                exc.failed_item_index = index
            except Exception:  # pragma: no cover - __slots__ exceptions
                pass
            add_note = getattr(exc, "add_note", None)
            if add_note is not None:
                add_note(f"WorkerPool.map: item index {index} of {len(items)} failed")
            raise

    def map(self, fn: Callable, items: Iterable) -> list:
        """``[fn(item) for item in items]``, fanned out, order preserved.

        Failures carry their item index: the raised exception gains a
        ``failed_item_index`` attribute and an explanatory note, and when
        several shards fail concurrently the exception of the lowest
        failing index is re-raised while the others are logged as
        suppressed (a shard stops at its first failure, exactly like the
        serial path stops at its first failing item).
        """
        items = list(items)
        if self.n_workers == 1 or len(items) <= 1:
            return [self._call_one(fn, items, index) for index in range(len(items))]
        results: list = [None] * len(items)
        errors: list[tuple[int, BaseException]] = []

        def run(lo: int, hi: int) -> None:
            for index in range(lo, hi):
                try:
                    results[index] = self._call_one(fn, items, index)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors.append((index, exc))
                    return

        threads = [
            threading.Thread(target=run, args=(lo, hi), daemon=True)
            for lo, hi in shard_ranges(len(items), self.n_workers)
            if hi > lo
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            errors.sort(key=lambda pair: pair[0])
            first_index, first_exc = errors[0]
            for index, suppressed in errors[1:]:
                _LOG.warning(
                    "WorkerPool.map: suppressing error from item index %d "
                    "(re-raising item index %d): %s: %s",
                    index,
                    first_index,
                    type(suppressed).__name__,
                    suppressed,
                )
            raise first_exc
        return results

    def close(self) -> None:
        """Nothing to release — kept for a uniform pool interface."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerPool(n_workers={self.n_workers})"


def _worker_main(conn, engine, worker_index: int = 0) -> None:
    """Worker loop: evaluate engine shards into shared-memory blocks.

    Runs in a forked child that inherited ``engine`` (its scratch buffers
    are now private copies, so the parent's engine is untouched).  Commands
    are small picklable tuples; array payloads only ever travel through the
    shared blocks.

    The child also inherits any armed fault-injection plan through ``fork``
    — the ``"worker.eval"`` site is how the crash/hang watchdog tests put a
    deterministic failure *inside* a real forked worker.
    """
    attachments: dict[str, tuple[np.ndarray, object]] = {}

    def view(name: str, shape) -> np.ndarray:
        cached = attachments.get(name)
        if cached is None:
            cached = attach_shared_array(name, shape)
            attachments[name] = cached
        return cached[0]

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        command = message[0]
        if command == "stop":
            break
        if command == "drop":
            for name in message[1]:
                cached = attachments.pop(name, None)
                if cached is not None:
                    cached[1].close()
            conn.send(("ok",))
            continue
        try:
            if command != "eval":
                raise ValueError(f"unknown worker command {command!r}")
            _, x_name, x_shape, lo, hi, out_specs, need_static, need_dynamic = message
            fault_site("worker.eval", worker=worker_index, lo=lo, hi=hi, role="shard")
            states = view(x_name, x_shape)[lo:hi]
            q, f, c_data, g_data = engine.evaluate(
                states,
                need_static_jacobian=need_static,
                need_dynamic_jacobian=need_dynamic,
            )
            results = {"q": q, "f": f, "c": c_data, "g": g_data}
            for key, name, shape in out_specs:
                view(name, shape)[lo:hi] = results[key]
            conn.send(("ok",))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    for _array, shm in attachments.values():
        shm.close()
    conn.close()


def _shutdown_pool(workers, buffers) -> None:
    """Finalizer: stop worker processes and unlink the shared blocks.

    Escalates per worker: cooperative ``stop`` -> ``join`` ->
    ``terminate`` (SIGTERM) -> ``kill`` (SIGKILL), with a bounded join
    after every signal.  A worker stuck in uninterruptible kernel state is
    the only thing that can survive SIGKILL, so this never leaves a zombie
    behind under normal operating systems — the old single
    ``join(timeout=1.0)`` + fire-and-forget ``terminate()`` could (the
    terminated child was never reaped, and its shared-memory attachments
    were never observed to close).
    """
    for process, conn in workers:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for process, conn in workers:
        process.join(timeout=1.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - SIGTERM-proof worker
            process.kill()
            process.join(timeout=5.0)
        conn.close()
        try:
            process.close()
        except Exception:  # pragma: no cover - interpreter-dependent
            pass
    workers.clear()
    for buffer in buffers.values():
        buffer.close()
    buffers.clear()


class ShardedKernelPool:
    """Fork-based process pool sharding engine evaluations along ``P``.

    Parameters
    ----------
    engine:
        The compiled :class:`~repro.circuits.engine.BatchedEvaluationEngine`
        the workers inherit at fork time.  The pool must be created *after*
        the engine (``MNASystem`` guarantees that by building it from the
        ``engine`` property), and the circuit must not change afterwards —
        which the compile contract already guarantees.
    n_unknowns, nnz_dynamic, nnz_static:
        Output widths: residual columns and the deduplicated Jacobian data
        widths of the system's compiled stamp patterns.
    n_workers:
        Number of forked workers (>= 2; resolution happens upstream in
        :func:`~repro.parallel.backends.resolve_execution`).
    reply_timeout_s:
        Watchdog budget (seconds) for gathering *all* worker replies of one
        evaluation.  A worker that has not answered when the budget runs
        out is treated as hung: the whole pool is torn down (hung workers
        get SIGTERM/SIGKILL, shared blocks are unlinked) and
        :class:`WorkerPoolError` is raised so the owner retries serially.
        ``None`` keeps the pre-watchdog blocking reads.
    """

    def __init__(
        self,
        engine,
        *,
        n_unknowns: int,
        nnz_dynamic: int,
        nnz_static: int,
        n_workers: int,
        reply_timeout_s: float | None = None,
    ) -> None:
        if n_workers < 2:
            raise ValueError(f"a sharded pool needs n_workers >= 2, got {n_workers}")
        self.n_workers = int(n_workers)
        self.reply_timeout_s = reply_timeout_s
        self._widths = {
            "q": int(n_unknowns),
            "f": int(n_unknowns),
            "c": int(nnz_dynamic),
            "g": int(nnz_static),
        }
        # Start the parent's resource tracker *before* forking: the workers
        # then inherit it, so their attach-side registrations (Python <=
        # 3.12 tracks attachments too) land in the same tracker the parent's
        # unlink notifies — otherwise every worker lazily spawns its own
        # tracker and warns about "leaked" segments it never owned at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API variations
            pass
        context = multiprocessing.get_context("fork")
        self._workers: list[tuple[object, object]] = []
        self._buffers: dict[str, SharedArray] = {}
        for index in range(self.n_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, engine, index),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._workers, self._buffers
        )

    # -- buffer management -------------------------------------------------
    def _buffer(self, tag: str, shape: tuple[int, int]) -> SharedArray:
        """The shared block for ``tag``, reallocated when the shape changes."""
        buffer = self._buffers.get(tag)
        if buffer is not None and buffer.shape == shape:
            return buffer
        if buffer is not None:
            retired = buffer.name
            self._broadcast_and_check(("drop", (retired,)))
            buffer.close()
        buffer = SharedArray(shape)
        self._buffers[tag] = buffer
        return buffer

    # -- worker protocol ---------------------------------------------------
    def _broadcast_and_check(self, message) -> None:
        """Send ``message`` to every worker and collect all acknowledgements."""
        self._send([message] * len(self._workers))

    def _send(self, messages: Sequence) -> None:
        """One message per worker (``None`` skips a worker), then gather replies.

        Replies are gathered with bounded ``poll()`` reads when
        ``reply_timeout_s`` is set (one shared wall-clock budget for the
        whole gather — the shards run concurrently, so every reply should
        land within roughly one evaluation time).  A dead worker is
        detected immediately either way: its pipe end closes, ``poll``
        returns ready and ``recv`` raises ``EOFError``.  A hung or dead
        worker leaves the reply protocol out of sync, so both paths tear
        the pool down (reaping the workers and unlinking the shared
        blocks) before raising :class:`WorkerPoolError`.
        """
        active = []
        try:
            for (process, conn), message in zip(self._workers, messages):
                if message is not None:
                    conn.send(message)
                    active.append(conn)
        except (BrokenPipeError, OSError) as exc:
            self.close()
            raise WorkerPoolError(f"worker process died: {exc}") from exc
        reply_deadline = (
            None
            if self.reply_timeout_s is None
            else time.monotonic() + self.reply_timeout_s
        )
        errors = []
        for conn in active:
            try:
                if reply_deadline is not None:
                    remaining = reply_deadline - time.monotonic()
                    if remaining <= 0.0 or not conn.poll(remaining):
                        self.close()
                        raise WorkerPoolError(
                            f"worker reply timed out after {self.reply_timeout_s:.3g}s "
                            "(hung worker); pool torn down"
                        )
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                self.close()
                raise WorkerPoolError(f"worker process died: {exc}") from exc
            if reply[0] == "error":
                errors.append(reply[1])
        if errors:
            raise WorkerPoolError(errors[0])

    # -- evaluation --------------------------------------------------------
    def evaluate(
        self,
        X: np.ndarray,
        *,
        need_static_jacobian: bool = True,
        need_dynamic_jacobian: bool = True,
    ):
        """Sharded ``engine.evaluate``: same signature, same bits.

        Returns ``(Q, F, c_data, g_data)`` exactly like the serial engine
        (``None`` for Jacobian blocks not requested).  The returned arrays
        are fresh copies — never views of the reused shared blocks — so
        callers may keep them across evaluations, matching the serial
        engine's aliasing contract.
        """
        n_points = int(X.shape[0])
        x_buffer = self._buffer("x", (n_points, X.shape[1]))
        np.copyto(x_buffer.array, X)

        out_keys = ["q", "f"]
        if need_dynamic_jacobian:
            out_keys.append("c")
        if need_static_jacobian:
            out_keys.append("g")
        out_buffers = {
            key: self._buffer(key, (n_points, self._widths[key])) for key in out_keys
        }
        out_specs = tuple(
            (key, buffer.name, buffer.shape) for key, buffer in out_buffers.items()
        )

        messages = []
        for lo, hi in shard_ranges(n_points, len(self._workers)):
            if hi > lo:
                messages.append(
                    (
                        "eval",
                        x_buffer.name,
                        x_buffer.shape,
                        lo,
                        hi,
                        out_specs,
                        need_static_jacobian,
                        need_dynamic_jacobian,
                    )
                )
            else:
                messages.append(None)
        self._send(messages)

        results = {key: np.array(buffer.array, copy=True) for key, buffer in out_buffers.items()}
        return (
            results["q"],
            results["f"],
            results.get("c"),
            results.get("g"),
        )

    def close(self) -> None:
        """Stop the workers and unlink the shared blocks (idempotent)."""
        self._finalizer()

    @property
    def alive(self) -> bool:
        """Whether the worker processes are still running."""
        return bool(self._workers) and all(
            process.is_alive() for process, _conn in self._workers
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedKernelPool(n_workers={self.n_workers}, "
            f"pid={os.getpid()}, alive={self.alive})"
        )
