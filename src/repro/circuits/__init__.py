"""Circuit substrate: netlists, device models and MNA compilation."""

from . import devices
from .mna import MNAEvaluation, MNASystem
from .netlist import GROUND_NAMES, Circuit
from .parser import parse_netlist, parse_value

__all__ = [
    "Circuit",
    "GROUND_NAMES",
    "MNASystem",
    "MNAEvaluation",
    "devices",
    "parse_netlist",
    "parse_value",
]
