"""Circuit substrate: netlists, device models and MNA compilation."""

from . import devices
from .engine import BatchedEvaluationEngine
from .mna import MNAEvaluation, MNASparseEvaluation, MNASystem
from .netlist import GROUND_NAMES, Circuit
from .parser import parse_netlist, parse_value

__all__ = [
    "Circuit",
    "GROUND_NAMES",
    "MNASystem",
    "MNAEvaluation",
    "MNASparseEvaluation",
    "BatchedEvaluationEngine",
    "devices",
    "parse_netlist",
    "parse_value",
]
