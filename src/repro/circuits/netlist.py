"""Netlist container.

A :class:`Circuit` is an ordered collection of devices plus the node
bookkeeping needed to compile them into an MNA system.  The usual workflow::

    from repro.circuits import Circuit
    from repro.circuits.devices import Resistor, Capacitor, VoltageSource
    from repro.signals import SinusoidStimulus

    ckt = Circuit("rc lowpass")
    ckt.add(VoltageSource("vin", "in", ckt.GROUND, SinusoidStimulus(1.0, 1e6)))
    ckt.add(Resistor("r1", "in", "out", 1e3))
    ckt.add(Capacitor("c1", "out", ckt.GROUND, 1e-9))
    mna = ckt.compile()

Nodes are created implicitly the first time a device references them.  The
ground node may be called ``"0"`` or ``"gnd"`` (case-insensitive); it is
always eliminated from the unknown vector.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..utils.exceptions import CircuitError, NodeError
from .devices.base import Device
from .devices.sources import CurrentSource, VoltageSource

__all__ = ["Circuit", "GROUND_NAMES"]

GROUND_NAMES = ("0", "gnd", "ground")


class Circuit:
    """An ordered netlist of devices.

    Parameters
    ----------
    name:
        Human-readable circuit name (used in reports).
    """

    #: Canonical ground node name, usable as ``ckt.GROUND``.
    GROUND = "0"

    def __init__(self, name: str = "circuit") -> None:
        if not name:
            raise CircuitError("circuit name must be a non-empty string")
        self.name = str(name)
        self._devices: list[Device] = []
        self._device_names: set[str] = set()
        self._node_order: list[str] = []
        self._node_set: set[str] = set()

    # -- construction ----------------------------------------------------
    @staticmethod
    def is_ground(node: str) -> bool:
        """Whether ``node`` names the ground (reference) node."""
        return str(node).lower() in GROUND_NAMES

    def add(self, device: Device) -> Device:
        """Add ``device`` to the netlist and return it.

        Device names must be unique within a circuit; node names referenced
        by the device are registered in first-appearance order (which fixes
        the ordering of the unknown vector).
        """
        if not isinstance(device, Device):
            raise CircuitError(f"expected a Device, got {type(device).__name__}")
        if device.name in self._device_names:
            raise CircuitError(f"duplicate device name {device.name!r} in circuit {self.name!r}")
        for node in device.node_names:
            self._register_node(node)
        self._devices.append(device)
        self._device_names.add(device.name)
        return device

    def add_all(self, devices: Iterable[Device]) -> None:
        """Add several devices at once."""
        for device in devices:
            self.add(device)

    def _register_node(self, node: str) -> None:
        node = str(node)
        if not node:
            raise NodeError("node names must be non-empty strings")
        if self.is_ground(node):
            return
        if node not in self._node_set:
            self._node_set.add(node)
            self._node_order.append(node)

    # -- inspection --------------------------------------------------------
    @property
    def devices(self) -> tuple[Device, ...]:
        """All devices in insertion order."""
        return tuple(self._devices)

    @property
    def nodes(self) -> tuple[str, ...]:
        """All non-ground nodes in first-appearance order."""
        return tuple(self._node_order)

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._node_order)

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        for dev in self._devices:
            if dev.name == name:
                return dev
        raise CircuitError(f"no device named {name!r} in circuit {self.name!r}")

    def has_node(self, node: str) -> bool:
        """Whether ``node`` exists in the circuit (ground always exists)."""
        return self.is_ground(node) or node in self._node_set

    def voltage_sources(self) -> tuple[VoltageSource, ...]:
        """All independent voltage sources (useful for source stepping)."""
        return tuple(d for d in self._devices if isinstance(d, VoltageSource))

    def current_sources(self) -> tuple[CurrentSource, ...]:
        """All independent current sources."""
        return tuple(d for d in self._devices if isinstance(d, CurrentSource))

    def independent_sources(self) -> tuple[Device, ...]:
        """All independent sources in insertion order."""
        return tuple(
            d for d in self._devices if isinstance(d, (VoltageSource, CurrentSource))
        )

    def is_nonlinear(self) -> bool:
        """Whether the circuit contains any nonlinear device."""
        return any(d.is_nonlinear() for d in self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, devices={len(self._devices)}, nodes={self.n_nodes})"
        )

    # -- compilation --------------------------------------------------------
    def compile(self, options: "EvaluationOptions | None" = None) -> "MNASystem":
        """Compile the netlist into an :class:`~repro.circuits.mna.MNASystem`.

        Binds every device to its positions in the global unknown vector
        (node voltages first, then branch currents in device insertion
        order) and runs basic sanity checks (at least one device, at least
        one non-ground node, every device node registered).

        ``options`` (an :class:`~repro.utils.options.EvaluationOptions`)
        selects the device-evaluation backend of the compiled system:
        ``"batched"`` (default) routes all stamp evaluation through the
        compiled gather/compute/scatter engine, ``"loop"`` keeps the
        per-device reference path.  ``kernel_backend="sharded"`` (plus
        ``n_workers``) additionally shards the batched engine's kernels
        across a pool of forked worker processes — one pool per compiled
        system, reused across every evaluation (see
        :mod:`repro.parallel`).
        """
        from ..utils.options import EvaluationOptions
        from .mna import MNASystem  # local import to avoid a cycle

        options = options or EvaluationOptions()

        if len(self._devices) == 0:
            raise CircuitError(f"circuit {self.name!r} has no devices")
        if self.n_nodes == 0:
            raise CircuitError(
                f"circuit {self.name!r} has no non-ground nodes; nothing to solve"
            )

        node_index = {node: i for i, node in enumerate(self._node_order)}
        n_nodes = len(self._node_order)

        branch_cursor = n_nodes
        unknown_names: list[str] = [f"v({node})" for node in self._node_order]
        for device in self._devices:
            node_indices: list[int] = []
            for node in device.node_names:
                if self.is_ground(node):
                    node_indices.append(-1)
                else:
                    node_indices.append(node_index[node])
            n_branches = device.n_branch_unknowns()
            branch_indices = list(range(branch_cursor, branch_cursor + n_branches))
            branch_cursor += n_branches
            unknown_names.extend(device.branch_labels())
            device.bind(node_indices, branch_indices)

        return MNASystem(
            circuit=self,
            node_index=node_index,
            unknown_names=tuple(unknown_names),
            n_unknowns=branch_cursor,
            evaluation_backend=options.evaluation_backend,
            kernel_backend=options.kernel_backend,
            n_workers=options.n_workers,
            worker_timeout_s=options.worker_timeout_s,
            restart_policy=options.restart,
        )
