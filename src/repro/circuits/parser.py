"""A small SPICE-flavoured netlist parser.

Downstream users of a circuit library usually have netlists, not Python
scripts, so the library accepts a compact SPICE-like text format and turns
it into a :class:`~repro.circuits.netlist.Circuit`.  The dialect is a
pragmatic subset of SPICE:

* one element per line; the first letter of the name selects the device
  (``R``, ``C``, ``L``, ``V``, ``I``, ``D``, ``M``, ``Q``, ``G``, ``E``),
* ``*`` starts a comment line, ``;`` a trailing comment,
* values accept engineering suffixes (``k``, ``meg``, ``u``, ``n``, ``p``,
  ``f``, ...),
* independent sources accept ``DC <value>``, ``SIN(offset amplitude freq
  [phase_deg])`` and ``PULSE(v1 v2 period width [delay rise fall])``,
* ``.model <name> <type> (param=value ...)`` defines diode (``D``), MOSFET
  (``NMOS``/``PMOS``) and BJT (``NPN``/``PNP``) model cards,
* ``.title`` and ``.end`` are honoured, other dot-cards raise a clear error
  (analyses are configured from Python, not from the netlist).

Example::

    * half-wave rectifier
    .model dfast D (is=1e-12)
    vin in 0 SIN(0 5 1k)
    d1  in out dfast
    rl  out 0 1k
    cl  out 0 10u
    .end

    circuit = parse_netlist(text)
"""

from __future__ import annotations

import math
import re
from typing import Callable

from ..signals.stimuli import DCStimulus, PulseStimulus, SinusoidStimulus, Stimulus, SumStimulus
from ..utils.exceptions import CircuitError
from .devices import (
    BJT,
    BJTParams,
    Capacitor,
    CurrentSource,
    Diode,
    DiodeParams,
    Inductor,
    MOSFET,
    MOSFETParams,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from .netlist import Circuit

__all__ = ["parse_netlist", "parse_value"]

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(r"^([+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)([a-zA-Z]*)$")


def parse_value(token: str) -> float:
    """Parse a SPICE-style number (``4.7k``, ``100n``, ``1meg``, ``2.5e-3``)."""
    token = token.strip()
    match = _VALUE_RE.match(token)
    if not match:
        raise CircuitError(f"cannot parse numeric value {token!r}")
    mantissa, suffix = match.groups()
    value = float(mantissa)
    suffix = suffix.lower()
    if not suffix:
        return value
    if suffix.startswith("meg"):
        return value * _SUFFIXES["meg"]
    key = suffix[0]
    if key not in _SUFFIXES:
        raise CircuitError(f"unknown engineering suffix {suffix!r} in {token!r}")
    return value * _SUFFIXES[key]


def _strip_comments(text: str) -> list[str]:
    lines: list[str] = []
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line or line.startswith("*"):
            continue
        lines.append(line)
    # SPICE continuation lines start with '+'.
    merged: list[str] = []
    for line in lines:
        if line.startswith("+") and merged:
            merged[-1] += " " + line[1:].strip()
        else:
            merged.append(line)
    return merged


_PAREN_RE = re.compile(r"(\w+)\s*\(([^)]*)\)", re.IGNORECASE)


def _parse_source_stimulus(tokens: list[str], full_line: str) -> Stimulus:
    """Parse the source specification part of a V/I line."""
    spec = " ".join(tokens)
    match = _PAREN_RE.search(full_line)
    kind = None
    args: list[float] = []
    if match and match.group(1).upper() in ("SIN", "PULSE"):
        kind = match.group(1).upper()
        args = [parse_value(t) for t in match.group(2).replace(",", " ").split()]
    if kind == "SIN":
        if len(args) < 3:
            raise CircuitError(f"SIN() needs at least (offset amplitude freq): {full_line!r}")
        offset, amplitude, freq = args[0], args[1], args[2]
        phase_deg = args[3] if len(args) > 3 else 0.0
        sine = SinusoidStimulus(
            amplitude=amplitude, frequency=freq, phase=math.radians(phase_deg), offset=0.0
        )
        if offset == 0.0:
            return sine
        return SumStimulus((DCStimulus(offset), sine))
    if kind == "PULSE":
        if len(args) < 4:
            raise CircuitError(f"PULSE() needs at least (v1 v2 period width): {full_line!r}")
        v1, v2, period, width = args[0], args[1], args[2], args[3]
        delay = args[4] if len(args) > 4 else 0.0
        rise = args[5] if len(args) > 5 else 0.0
        fall = args[6] if len(args) > 6 else 0.0
        return PulseStimulus(
            low=v1, high=v2, period=period, width=width, delay=delay, rise=rise, fall=fall
        )
    # Plain DC: either "DC <value>" or just "<value>".
    cleaned = [t for t in spec.split() if t.upper() != "DC"]
    if len(cleaned) != 1:
        raise CircuitError(f"cannot parse source specification {spec!r}")
    return DCStimulus(parse_value(cleaned[0]))


def _parse_model_card(tokens: list[str], models: dict[str, tuple[str, dict[str, float]]]) -> None:
    if len(tokens) < 3:
        raise CircuitError(f".model needs a name and a type: {' '.join(tokens)!r}")
    name = tokens[1].lower()
    model_type = tokens[2].upper()
    param_text = " ".join(tokens[3:])
    param_text = param_text.strip()
    if param_text.startswith("(") and param_text.endswith(")"):
        param_text = param_text[1:-1]
    params: dict[str, float] = {}
    for part in param_text.replace(",", " ").split():
        if "=" not in part:
            raise CircuitError(f"malformed model parameter {part!r} in .model {name}")
        key, value = part.split("=", 1)
        params[key.strip().lower()] = parse_value(value)
    models[name] = (model_type, params)


_DIODE_PARAM_MAP = {
    "is": "saturation_current",
    "n": "emission_coefficient",
    "rs": "series_resistance",
    "cj0": "junction_capacitance",
    "cjo": "junction_capacitance",
    "vj": "junction_potential",
    "m": "grading_coefficient",
    "tt": "transit_time",
}

_MOS_PARAM_MAP = {
    "vto": "vto",
    "kp": "kp",
    "w": "w",
    "l": "l",
    "lambda": "lambda_",
    "cgs": "cgs",
    "cgd": "cgd",
    "cdb": "cdb",
    "csb": "csb",
}

_BJT_PARAM_MAP = {
    "is": "saturation_current",
    "bf": "beta_forward",
    "br": "beta_reverse",
    "cje": "cje",
    "cjc": "cjc",
}


def _map_params(raw: dict[str, float], mapping: dict[str, str], context: str) -> dict[str, float]:
    mapped: dict[str, float] = {}
    for key, value in raw.items():
        if key not in mapping:
            raise CircuitError(f"unsupported parameter {key!r} in {context}")
        mapped[mapping[key]] = value
    return mapped


def _lookup_model(
    models: dict[str, tuple[str, dict[str, float]]], name: str, allowed: tuple[str, ...], line: str
) -> tuple[str, dict[str, float]]:
    key = name.lower()
    if key not in models:
        raise CircuitError(f"unknown model {name!r} referenced in {line!r}")
    model_type, params = models[key]
    if model_type not in allowed:
        raise CircuitError(
            f"model {name!r} has type {model_type}, expected one of {allowed} in {line!r}"
        )
    return model_type, params


def parse_netlist(text: str, *, name: str | None = None) -> Circuit:
    """Parse a SPICE-flavoured netlist into a :class:`Circuit`.

    See the module docstring for the supported dialect.  Device and node
    names are case-insensitive (lower-cased); ``0``/``gnd`` is ground.
    """
    lines = _strip_comments(text)
    if not lines:
        raise CircuitError("netlist is empty")

    models: dict[str, tuple[str, dict[str, float]]] = {}
    title = name
    element_lines: list[str] = []

    for line in lines:
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == ".title":
            title = " ".join(tokens[1:]) or title
        elif keyword == ".model":
            _parse_model_card(tokens, models)
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            raise CircuitError(
                f"unsupported control card {tokens[0]!r}; analyses are configured from Python"
            )
        else:
            element_lines.append(line)

    circuit = Circuit(title or "netlist")

    builders: dict[str, Callable[[list[str], str], None]] = {}

    def add_two_terminal(cls):
        def build(tokens: list[str], line: str) -> None:
            if len(tokens) < 4:
                raise CircuitError(f"element line needs name, 2 nodes and a value: {line!r}")
            circuit.add(cls(tokens[0].lower(), tokens[1].lower(), tokens[2].lower(), parse_value(tokens[3])))

        return build

    builders["r"] = add_two_terminal(Resistor)
    builders["c"] = add_two_terminal(Capacitor)
    builders["l"] = add_two_terminal(Inductor)

    def build_source(cls):
        def build(tokens: list[str], line: str) -> None:
            if len(tokens) < 4:
                raise CircuitError(f"source line needs name, 2 nodes and a value: {line!r}")
            stimulus = _parse_source_stimulus(tokens[3:], line)
            circuit.add(cls(tokens[0].lower(), tokens[1].lower(), tokens[2].lower(), stimulus))

        return build

    builders["v"] = build_source(VoltageSource)
    builders["i"] = build_source(CurrentSource)

    def build_diode(tokens: list[str], line: str) -> None:
        if len(tokens) < 4:
            raise CircuitError(f"diode line needs name, 2 nodes and a model: {line!r}")
        _, raw = _lookup_model(models, tokens[3], ("D",), line)
        params = DiodeParams(**_map_params(raw, _DIODE_PARAM_MAP, f"diode model {tokens[3]!r}"))
        circuit.add(Diode(tokens[0].lower(), tokens[1].lower(), tokens[2].lower(), params))

    builders["d"] = build_diode

    def build_mosfet(tokens: list[str], line: str) -> None:
        if len(tokens) < 6:
            raise CircuitError(f"MOSFET line needs name, 4 nodes and a model: {line!r}")
        model_type, raw = _lookup_model(models, tokens[5], ("NMOS", "PMOS"), line)
        params = MOSFETParams(**_map_params(raw, _MOS_PARAM_MAP, f"MOS model {tokens[5]!r}"))
        polarity = 1 if model_type == "NMOS" else -1
        circuit.add(
            MOSFET(
                tokens[0].lower(),
                tokens[1].lower(),
                tokens[2].lower(),
                tokens[3].lower(),
                tokens[4].lower(),
                params=params,
                polarity=polarity,
            )
        )

    builders["m"] = build_mosfet

    def build_bjt(tokens: list[str], line: str) -> None:
        if len(tokens) < 5:
            raise CircuitError(f"BJT line needs name, 3 nodes and a model: {line!r}")
        model_type, raw = _lookup_model(models, tokens[4], ("NPN", "PNP"), line)
        params = BJTParams(**_map_params(raw, _BJT_PARAM_MAP, f"BJT model {tokens[4]!r}"))
        polarity = 1 if model_type == "NPN" else -1
        circuit.add(
            BJT(
                tokens[0].lower(),
                tokens[1].lower(),
                tokens[2].lower(),
                tokens[3].lower(),
                params=params,
                polarity=polarity,
            )
        )

    builders["q"] = build_bjt

    def build_vccs(tokens: list[str], line: str) -> None:
        if len(tokens) < 6:
            raise CircuitError(f"VCCS line needs name, 4 nodes and a gain: {line!r}")
        circuit.add(
            VCCS(
                tokens[0].lower(),
                tokens[1].lower(),
                tokens[2].lower(),
                tokens[3].lower(),
                tokens[4].lower(),
                parse_value(tokens[5]),
            )
        )

    builders["g"] = build_vccs

    def build_vcvs(tokens: list[str], line: str) -> None:
        if len(tokens) < 6:
            raise CircuitError(f"VCVS line needs name, 4 nodes and a gain: {line!r}")
        circuit.add(
            VCVS(
                tokens[0].lower(),
                tokens[1].lower(),
                tokens[2].lower(),
                tokens[3].lower(),
                tokens[4].lower(),
                parse_value(tokens[5]),
            )
        )

    builders["e"] = build_vcvs

    for line in element_lines:
        tokens = line.split()
        key = tokens[0][0].lower()
        if key not in builders:
            raise CircuitError(f"unsupported element type {tokens[0]!r} in line {line!r}")
        builders[key](tokens, line)

    if len(circuit) == 0:
        raise CircuitError("netlist contains no elements")
    return circuit
