"""Device models: passives, sources, diodes, MOSFETs, BJTs and behavioural elements."""

from .base import Device, TwoTerminal
from .behavioral import MultiplierCurrentSource, PolynomialConductance, SmoothSwitch
from .bjt import BJT, NPN, PNP, BJTParams
from .diode import Diode, DiodeParams
from .mosfet import MOSFET, NMOS, PMOS, MOSFETParams
from .passives import Capacitor, Conductance, Inductor, Resistor
from .sources import VCCS, VCVS, CurrentSource, VoltageSource

__all__ = [
    "Device",
    "TwoTerminal",
    "Resistor",
    "Conductance",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "Diode",
    "DiodeParams",
    "MOSFET",
    "NMOS",
    "PMOS",
    "MOSFETParams",
    "BJT",
    "NPN",
    "PNP",
    "BJTParams",
    "MultiplierCurrentSource",
    "SmoothSwitch",
    "PolynomialConductance",
]
