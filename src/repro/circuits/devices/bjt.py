"""Bipolar junction transistor (Ebers-Moll) model.

The paper's circuits are CMOS, but bipolar Gilbert-cell mixers are the other
canonical down-conversion topology and several tests and examples use them to
show that the difference-time-scale MPDE method is not specific to MOS
switching circuits.  The model implemented here is the basic transport-form
Ebers-Moll equation pair with exponent limiting, without parasitic
resistances; junction capacitances are constant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...utils.exceptions import DeviceError
from ...utils.validation import check_nonnegative, check_positive
from .base import BatchSpec, Device, linear_capacitance_kernel, linear_capacitance_slots
from .diode import DEFAULT_THERMAL_VOLTAGE

__all__ = ["BJTParams", "BJT", "NPN", "PNP"]

# Terminal order inside a BJT BatchSpec: (collector, base, emitter).
_C, _B, _E = 0, 1, 2
#: The two junction capacitances in ``stamp_dynamic`` order.
_CAP_SLOTS = ((_B, _E), (_B, _C))

_MAX_EXPONENT = 40.0


@dataclass(frozen=True)
class BJTParams:
    """Ebers-Moll parameters.

    Attributes
    ----------
    saturation_current:
        Transport saturation current ``IS``.
    beta_forward, beta_reverse:
        Forward / reverse current gains ``BF`` / ``BR``.
    cje, cjc:
        Constant base-emitter / base-collector capacitances.
    thermal_voltage:
        ``kT/q``.
    """

    saturation_current: float = 1e-16
    beta_forward: float = 100.0
    beta_reverse: float = 1.0
    cje: float = 0.0
    cjc: float = 0.0
    thermal_voltage: float = DEFAULT_THERMAL_VOLTAGE

    def __post_init__(self) -> None:
        check_positive("saturation_current", self.saturation_current)
        check_positive("beta_forward", self.beta_forward)
        check_positive("beta_reverse", self.beta_reverse)
        check_nonnegative("cje", self.cje)
        check_nonnegative("cjc", self.cjc)
        check_positive("thermal_voltage", self.thermal_voltage)


def _limited_exp(arg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exponential with linear continuation past ``_MAX_EXPONENT``.

    Returns the (possibly continued) value and its derivative w.r.t. ``arg``.
    """
    limited = np.minimum(arg, _MAX_EXPONENT)
    e = np.exp(limited)
    over = arg > _MAX_EXPONENT
    value = np.where(over, e * (1.0 + (arg - _MAX_EXPONENT)), e)
    derivative = np.where(over, e, e)
    return value, derivative


def _bjt_static_kernel(V, params, need_jacobian):
    """Batched :meth:`BJT._currents` plus the three-row stamp values."""
    is_, beta_forward, beta_reverse, vt, pol = params
    vc, vb, ve = V[_C], V[_B], V[_E]
    vbe = pol * (vb - ve)
    vbc = pol * (vb - vc)

    ef, def_ = _limited_exp(vbe / vt)
    er, der_ = _limited_exp(vbc / vt)
    ict = is_ * (ef - er)
    ibe = is_ / beta_forward * (ef - 1.0)
    ibc = is_ / beta_reverse * (er - 1.0)
    ic = ict - ibc
    ib = ibe + ibc
    ie = ic + ib

    vec = (pol * ic, pol * ib, -pol * ie)
    if not need_jacobian:
        return vec, None

    d_ic_dvbe = is_ * def_ / vt
    d_ic_dvbc = -is_ * der_ / vt - is_ / beta_reverse * der_ / vt
    d_ib_dvbe = is_ / beta_forward * def_ / vt
    d_ib_dvbc = is_ / beta_reverse * der_ / vt

    mat = []
    for d_dvbe, d_dvbc, sign in (
        (d_ic_dvbe, d_ic_dvbc, 1.0),
        (d_ib_dvbe, d_ib_dvbc, 1.0),
        (d_ic_dvbe + d_ib_dvbe, d_ic_dvbc + d_ib_dvbc, -1.0),
    ):
        mat += [sign * (d_dvbe + d_dvbc), sign * (-d_dvbe), sign * (-d_dvbc)]
    return vec, tuple(mat)


class BJT(Device):
    """Three-terminal BJT (collector, base, emitter), Ebers-Moll transport form.

    ``polarity = +1`` gives an NPN, ``-1`` a PNP.
    """

    def __init__(
        self,
        name: str,
        collector: str,
        base: str,
        emitter: str,
        params: BJTParams | None = None,
        polarity: int = 1,
    ) -> None:
        super().__init__(name, (collector, base, emitter))
        if polarity not in (1, -1):
            raise DeviceError("polarity must be +1 (NPN) or -1 (PNP)")
        self.params = params or BJTParams()
        self.polarity = polarity

    def is_nonlinear(self) -> bool:
        return True

    def has_dynamics(self) -> bool:
        return self.params.cje > 0.0 or self.params.cjc > 0.0

    def _currents(
        self, vbe: np.ndarray, vbc: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Collector and base currents plus their partials w.r.t. vbe and vbc."""
        p = self.params
        vt = p.thermal_voltage
        is_ = p.saturation_current
        ef, def_ = _limited_exp(vbe / vt)
        er, der_ = _limited_exp(vbc / vt)
        # Transport current and junction (diode) currents.
        ict = is_ * (ef - er)
        ibe = is_ / p.beta_forward * (ef - 1.0)
        ibc = is_ / p.beta_reverse * (er - 1.0)
        ic = ict - ibc
        ib = ibe + ibc
        d_ic_dvbe = is_ * def_ / vt
        d_ic_dvbc = -is_ * der_ / vt - is_ / p.beta_reverse * der_ / vt
        d_ib_dvbe = is_ / p.beta_forward * def_ / vt
        d_ib_dvbc = is_ / p.beta_reverse * der_ / vt
        return ic, ib, d_ic_dvbe, d_ic_dvbc, d_ib_dvbe, d_ib_dvbc

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        c, b, e = self._node_idx
        pol = float(self.polarity)
        vc = self._voltage(X, c)
        vb = self._voltage(X, b)
        ve = self._voltage(X, e)
        vbe = pol * (vb - ve)
        vbc = pol * (vb - vc)
        ic, ib, d_ic_dvbe, d_ic_dvbc, d_ib_dvbe, d_ib_dvbc = self._currents(vbe, vbc)
        ie = ic + ib  # current out of the emitter terminal (into the device at C and B)

        # Physical currents into each terminal (NPN frame scaled by polarity).
        self._add_vec(F, c, pol * ic)
        self._add_vec(F, b, pol * ib)
        self._add_vec(F, e, -pol * ie)

        # Chain rule: d vbe/d vb = pol, d vbe/d ve = -pol, d vbc/d vb = pol,
        # d vbc/d vc = -pol; every current is also scaled by pol, so the
        # polarity factors cancel exactly as in the MOSFET model.
        def stamp_row(row: int, d_dvbe: np.ndarray, d_dvbc: np.ndarray, sign: float) -> None:
            self._add_mat(G, row, b, sign * (d_dvbe + d_dvbc))
            self._add_mat(G, row, e, sign * (-d_dvbe))
            self._add_mat(G, row, c, sign * (-d_dvbc))

        stamp_row(c, d_ic_dvbe, d_ic_dvbc, 1.0)
        stamp_row(b, d_ib_dvbe, d_ib_dvbc, 1.0)
        stamp_row(e, d_ic_dvbe + d_ib_dvbe, d_ic_dvbc + d_ib_dvbc, -1.0)

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        if not self.has_dynamics():
            return
        self._require_bound()
        c, b, e = self._node_idx
        p = self.params
        vb = self._voltage(X, b)
        vc = self._voltage(X, c)
        ve = self._voltage(X, e)

        def add_linear_cap(node_a: int, node_b: int, cap: float, va: np.ndarray, vb_: np.ndarray) -> None:
            if cap <= 0.0:
                return
            charge = cap * (va - vb_)
            self._add_vec(Q, node_a, charge)
            self._add_vec(Q, node_b, -charge)
            self._add_mat(C, node_a, node_a, cap)
            self._add_mat(C, node_a, node_b, -cap)
            self._add_mat(C, node_b, node_a, -cap)
            self._add_mat(C, node_b, node_b, cap)

        add_linear_cap(b, e, p.cje, vb, ve)
        add_linear_cap(b, c, p.cjc, vb, vc)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        p = self.params
        caps = (p.cje, p.cjc)
        active = tuple(slot for slot, cap in zip(_CAP_SLOTS, caps) if cap > 0.0)
        spec = BatchSpec(
            key=("BJT", active),
            indices=self._node_idx,
            static_params=(
                p.saturation_current,
                p.beta_forward,
                p.beta_reverse,
                p.thermal_voltage,
                float(self.polarity),
            ),
            dynamic_params=tuple(cap for cap in caps if cap > 0.0),
            static_vec=(_C, _B, _E),
            static_mat=(
                (_C, _B), (_C, _E), (_C, _C),
                (_B, _B), (_B, _E), (_B, _C),
                (_E, _B), (_E, _E), (_E, _C),
            ),
            static_kernel=_bjt_static_kernel,
        )
        if active:
            vec, mat = linear_capacitance_slots(active)
            spec = replace(
                spec,
                dynamic_vec=vec,
                dynamic_mat=mat,
                dynamic_kernel=linear_capacitance_kernel(active),
                dynamic_mat_constant=True,
            )
        return spec


class NPN(BJT):
    """Convenience subclass for NPN devices."""

    def __init__(
        self,
        name: str,
        collector: str,
        base: str,
        emitter: str,
        params: BJTParams | None = None,
    ) -> None:
        super().__init__(name, collector, base, emitter, params, polarity=1)


class PNP(BJT):
    """Convenience subclass for PNP devices."""

    def __init__(
        self,
        name: str,
        collector: str,
        base: str,
        emitter: str,
        params: BJTParams | None = None,
    ) -> None:
        super().__init__(name, collector, base, emitter, params, polarity=-1)
