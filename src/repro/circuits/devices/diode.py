"""Junction diode model.

Exponential Shockley DC characteristic with numerically limited exponent,
plus depletion and diffusion charge storage.  The diode is the simplest
strongly nonlinear element in the library and is used heavily by the tests
(rectifiers, clippers) and by the single-device switching examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...utils.validation import check_nonnegative, check_positive
from .base import BatchSpec, TwoTerminal

__all__ = ["DiodeParams", "Diode"]

# Thermal voltage at ~300 K.
DEFAULT_THERMAL_VOLTAGE = 0.02585
# Largest exponent argument before the exponential is linearised.
_MAX_EXPONENT = 40.0


@dataclass(frozen=True)
class DiodeParams:
    """Diode model parameters (SPICE-like names).

    Attributes
    ----------
    saturation_current:
        ``IS`` — reverse saturation current in amperes.
    emission_coefficient:
        ``N`` — ideality factor.
    series_resistance:
        ``RS`` — ohmic series resistance (0 disables it; when non-zero it is
        folded into the conductive stamp as a linearised series element).
    junction_capacitance:
        ``CJ0`` — zero-bias depletion capacitance in farads.
    junction_potential:
        ``VJ`` — built-in junction potential in volts.
    grading_coefficient:
        ``M`` — junction grading coefficient.
    transit_time:
        ``TT`` — carrier transit time (diffusion capacitance) in seconds.
    thermal_voltage:
        ``kT/q`` used by the exponential.
    """

    saturation_current: float = 1e-14
    emission_coefficient: float = 1.0
    series_resistance: float = 0.0
    junction_capacitance: float = 0.0
    junction_potential: float = 0.8
    grading_coefficient: float = 0.5
    transit_time: float = 0.0
    thermal_voltage: float = DEFAULT_THERMAL_VOLTAGE

    def __post_init__(self) -> None:
        check_positive("saturation_current", self.saturation_current)
        check_positive("emission_coefficient", self.emission_coefficient)
        check_nonnegative("series_resistance", self.series_resistance)
        check_nonnegative("junction_capacitance", self.junction_capacitance)
        check_positive("junction_potential", self.junction_potential)
        check_positive("grading_coefficient", self.grading_coefficient)
        check_nonnegative("transit_time", self.transit_time)
        check_positive("thermal_voltage", self.thermal_voltage)


def _batched_current_and_conductance(vd, saturation_current, vt):
    """Array-parameter version of :meth:`Diode._current_and_conductance`.

    ``saturation_current`` / ``vt`` are ``(n_group,)`` arrays broadcasting
    against the ``(P, n_group)`` junction voltage; every expression mirrors
    the per-device method so the results are bit-for-bit identical.
    """
    arg = vd / vt
    limited = np.minimum(arg, _MAX_EXPONENT)
    exp_term = np.exp(limited)
    over = arg > _MAX_EXPONENT
    exp_full = np.where(over, exp_term * (1.0 + (arg - _MAX_EXPONENT)), exp_term)
    current = saturation_current * (exp_full - 1.0)
    conductance = saturation_current * exp_term / vt
    return current, conductance


def _diode_static_kernel(fold_series_resistance: bool):
    def kernel(V, params, need_jacobian):
        saturation_current, vt, series_resistance = params
        vd = V[0] - V[1]
        current, conductance = _batched_current_and_conductance(vd, saturation_current, vt)
        if fold_series_resistance:
            factor = 1.0 / (1.0 + conductance * series_resistance)
            current = current * factor
            conductance = conductance * factor
        vec = (current, -current)
        if not need_jacobian:
            return vec, None
        return vec, (conductance, -conductance, -conductance, conductance)

    return kernel


def _diode_dynamic_kernel(has_depletion: bool, has_transit: bool, grading_coefficient: float):
    # The grading coefficient is captured as a *Python scalar* (and is part
    # of the group key): `one_minus ** (1.0 - m)` takes NumPy's scalar-power
    # fast path (sqrt/square for m = 0.5 / m = -1), which an array-valued
    # exponent would not — and that fast path is not bit-identical to
    # np.power.  Scalar capture keeps the kernel on exactly the loop stamp's
    # arithmetic.
    m = grading_coefficient

    def kernel(V, params, need_jacobian):
        saturation_current, vt, cj0, vj, tt = params
        vd = V[0] - V[1]
        charge = np.zeros_like(vd)
        capacitance = np.zeros_like(vd)
        if has_depletion:
            fc = 0.5
            v_cross = fc * vj
            below = vd < v_cross
            safe = np.minimum(vd, v_cross)
            one_minus = 1.0 - safe / vj
            q_dep_below = cj0 * vj / (1.0 - m) * (1.0 - one_minus ** (1.0 - m))
            c_dep_below = cj0 * one_minus ** (-m)
            f1 = cj0 * vj / (1.0 - m) * (1.0 - (1.0 - fc) ** (1.0 - m))
            c_at_cross = cj0 * (1.0 - fc) ** (-m)
            dcdv_at_cross = cj0 * m / vj * (1.0 - fc) ** (-m - 1.0)
            dv = vd - v_cross
            q_dep_above = f1 + c_at_cross * dv + 0.5 * dcdv_at_cross * dv**2
            c_dep_above = c_at_cross + dcdv_at_cross * dv
            charge = charge + np.where(below, q_dep_below, q_dep_above)
            capacitance = capacitance + np.where(below, c_dep_below, c_dep_above)
        if has_transit:
            current, conductance = _batched_current_and_conductance(
                vd, saturation_current, vt
            )
            charge = charge + tt * current
            capacitance = capacitance + tt * conductance
        vec = (charge, -charge)
        if not need_jacobian:
            return vec, None
        return vec, (capacitance, -capacitance, -capacitance, capacitance)

    return kernel


class Diode(TwoTerminal):
    """A junction diode from anode (``node_pos``) to cathode (``node_neg``)."""

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        params: DiodeParams | None = None,
    ) -> None:
        super().__init__(name, anode, cathode)
        self.params = params or DiodeParams()

    def is_nonlinear(self) -> bool:
        return True

    def has_dynamics(self) -> bool:
        return self.params.junction_capacitance > 0.0 or self.params.transit_time > 0.0

    # -- DC characteristic ------------------------------------------------
    def _current_and_conductance(self, vd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Diode current and small-signal conductance with exponent limiting.

        For ``vd / (N * Vt) > _MAX_EXPONENT`` the exponential is continued
        linearly (first-order Taylor expansion around the limit), which keeps
        both the current and its derivative continuous and prevents overflow
        during wild Newton iterates.
        """
        p = self.params
        vt = p.emission_coefficient * p.thermal_voltage
        arg = vd / vt
        limited = np.minimum(arg, _MAX_EXPONENT)
        exp_term = np.exp(limited)
        over = arg > _MAX_EXPONENT
        # Linear continuation beyond the limit: exp(a) ~ exp(A)*(1 + (a - A)).
        exp_full = np.where(over, exp_term * (1.0 + (arg - _MAX_EXPONENT)), exp_term)
        current = p.saturation_current * (exp_full - 1.0)
        conductance = p.saturation_current * np.where(over, exp_term, exp_term) / vt
        return current, conductance

    # -- charge storage ----------------------------------------------------
    def _charge_and_capacitance(self, vd: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Depletion plus diffusion charge and its derivative."""
        p = self.params
        charge = np.zeros_like(vd)
        capacitance = np.zeros_like(vd)
        if p.junction_capacitance > 0.0:
            fc = 0.5  # forward-bias depletion-capacitance crossover
            vj = p.junction_potential
            m = p.grading_coefficient
            cj0 = p.junction_capacitance
            v_cross = fc * vj
            below = vd < v_cross
            # Below the crossover: classic depletion formula.
            safe = np.minimum(vd, v_cross)
            one_minus = 1.0 - safe / vj
            q_dep_below = cj0 * vj / (1.0 - m) * (1.0 - one_minus ** (1.0 - m))
            c_dep_below = cj0 * one_minus ** (-m)
            # Above the crossover: linear extrapolation of the capacitance,
            # integrated to a quadratic charge so q stays C1-continuous.
            f1 = cj0 * vj / (1.0 - m) * (1.0 - (1.0 - fc) ** (1.0 - m))
            c_at_cross = cj0 * (1.0 - fc) ** (-m)
            dcdv_at_cross = cj0 * m / vj * (1.0 - fc) ** (-m - 1.0)
            dv = vd - v_cross
            q_dep_above = f1 + c_at_cross * dv + 0.5 * dcdv_at_cross * dv**2
            c_dep_above = c_at_cross + dcdv_at_cross * dv
            charge = charge + np.where(below, q_dep_below, q_dep_above)
            capacitance = capacitance + np.where(below, c_dep_below, c_dep_above)
        if p.transit_time > 0.0:
            current, conductance = self._current_and_conductance(vd)
            charge = charge + p.transit_time * current
            capacitance = capacitance + p.transit_time * conductance
        return charge, capacitance

    # -- stamps -------------------------------------------------------------
    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p_idx, n_idx = self._terminal_indices()
        vd = self.branch_voltage(X)
        current, conductance = self._current_and_conductance(vd)
        if self.params.series_resistance > 0.0:
            # Fold RS in as a first-order correction: i' = i / (1 + g * RS).
            factor = 1.0 / (1.0 + conductance * self.params.series_resistance)
            current = current * factor
            conductance = conductance * factor
        self._add_vec(F, p_idx, current)
        self._add_vec(F, n_idx, -current)
        self._add_mat(G, p_idx, p_idx, conductance)
        self._add_mat(G, p_idx, n_idx, -conductance)
        self._add_mat(G, n_idx, p_idx, -conductance)
        self._add_mat(G, n_idx, n_idx, conductance)

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        if not self.has_dynamics():
            return
        p_idx, n_idx = self._terminal_indices()
        vd = self.branch_voltage(X)
        charge, capacitance = self._charge_and_capacitance(vd)
        self._add_vec(Q, p_idx, charge)
        self._add_vec(Q, n_idx, -charge)
        self._add_mat(C, p_idx, p_idx, capacitance)
        self._add_mat(C, p_idx, n_idx, -capacitance)
        self._add_mat(C, n_idx, p_idx, -capacitance)
        self._add_mat(C, n_idx, n_idx, capacitance)

    def batch_spec(self) -> BatchSpec:
        p = self.params
        p_idx, n_idx = self._terminal_indices()
        has_rs = p.series_resistance > 0.0
        has_depletion = p.junction_capacitance > 0.0
        has_transit = p.transit_time > 0.0
        vt = p.emission_coefficient * p.thermal_voltage
        two_terminal_mat = ((0, 0), (0, 1), (1, 0), (1, 1))
        spec = BatchSpec(
            key=("Diode", has_rs, has_depletion, has_transit, p.grading_coefficient),
            indices=(p_idx, n_idx),
            static_params=(p.saturation_current, vt, p.series_resistance),
            dynamic_params=(
                p.saturation_current,
                vt,
                p.junction_capacitance,
                p.junction_potential,
                p.transit_time,
            ),
            static_vec=(0, 1),
            static_mat=two_terminal_mat,
            static_kernel=_diode_static_kernel(has_rs),
        )
        if self.has_dynamics():
            spec = replace(
                spec,
                dynamic_vec=(0, 1),
                dynamic_mat=two_terminal_mat,
                dynamic_kernel=_diode_dynamic_kernel(
                    has_depletion, has_transit, p.grading_coefficient
                ),
            )
        return spec
