"""Device base class and stamping conventions.

Circuit equations are written in the charge-oriented DAE form the paper uses
(its Eq. (1))::

    d/dt q(x(t)) + f(x(t)) + b(t) = 0

where ``x`` collects the node voltages (relative to ground) followed by the
branch currents of devices that need an explicit current unknown (voltage
sources, inductors, VCVS).  Devices contribute to the vectors and Jacobians
through *stamps*:

* ``stamp_static``  — resistive/conductive currents ``f(x)`` and their
  Jacobian ``G(x) = df/dx``,
* ``stamp_dynamic`` — charges/fluxes ``q(x)`` and their Jacobian
  ``C(x) = dq/dx``,
* ``stamp_source``  — the excitation ``b(t)`` of independent sources, and
* ``stamp_source_bivariate`` — the multi-time excitation ``b_hat(t1, t2)``
  used by the MPDE core.

Sign conventions
----------------
* Node equations are KCL written as "sum of currents *leaving* the node
  through devices equals zero"; a device conducting current out of node
  ``a`` into node ``b`` therefore adds ``+i`` to row ``a`` and ``-i`` to row
  ``b``.
* Branch rows of voltage-defined elements enforce the branch relation
  (e.g. ``v+ - v- - V(t) = 0`` for an independent voltage source) with the
  known excitation moved into ``b(t)``.

Vectorised evaluation
---------------------
All stamps operate on arrays holding *many* evaluation points at once:
``X`` has shape ``(P, n)`` (P evaluation points, n unknowns) and the vector
accumulators have shapes ``Q, F, B: (P, n)``.  The MPDE discretisation
evaluates the whole 2-D grid (the paper's 40 x 30 = 1200 points) in a single
call, which is what keeps the pure-Python reproduction fast; single-point
analyses (DC, transient) simply pass ``P = 1``.

Jacobian accumulation
---------------------
Jacobian contributions MUST go through :meth:`Device._add_mat` — never index
the Jacobian argument directly.  The argument may be a dense ``(P, n, n)``
array (the legacy reference path) or a *stamp accumulator* object
(:class:`PatternRecorder`, :class:`PatternValueFiller`, :class:`NullStamps`),
which is how the compiled sparse-assembly pipeline works:

* at ``Circuit.compile`` time each device's stamps are run once against a
  :class:`PatternRecorder` to capture the sparsity pattern (the exact
  sequence of ``_add_mat`` calls, which must not depend on ``x`` — only on
  device parameters and topology);
* at evaluation time a :class:`PatternValueFiller` writes the per-point
  values of every contribution into a flat ``(P, nnz)`` buffer in that same
  recorded order, from which CSR Jacobians are assembled without any dense
  ``(P, n, n)`` intermediates;
* residual-only evaluations pass :class:`NullStamps`, so no Jacobian storage
  is allocated or written at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ...utils.exceptions import DeviceError

__all__ = [
    "BatchSpec",
    "Device",
    "linear_capacitance_kernel",
    "linear_capacitance_slots",
    "TwoTerminal",
    "NullStamps",
    "PatternRecorder",
    "PatternValueFiller",
    "VectorRecorder",
]


class NullStamps:
    """Jacobian accumulator that discards every contribution.

    Passed to the stamps by residual-only evaluations
    (``MNASystem.evaluate(..., need_jacobian=False)``) so that line searches,
    continuation ramps and convergence checks skip all Jacobian storage.
    """

    __slots__ = ()

    def add(self, row: int, col: int, value) -> None:
        """Discard the contribution."""


class VectorRecorder:
    """Residual accumulator that records the row sequence of a stamp.

    The vector analogue of :class:`PatternRecorder`: passed as the ``F`` /
    ``Q`` / ``B`` argument of a stamp, it captures the exact sequence of
    ``_add_vec`` calls (ground rows are dropped before reaching it).  The
    batched evaluation engine compiles these per-device row sequences into
    its residual scatter maps.
    """

    __slots__ = ("rows",)

    def __init__(self) -> None:
        self.rows: list[int] = []

    def add(self, index: int, value) -> None:
        """Record the row of the contribution."""
        self.rows.append(int(index))


class PatternRecorder:
    """Jacobian accumulator that records the (row, col) sequence of a stamp.

    Used once per device at compile time to capture the stamp sparsity
    pattern.  Values are ignored (and must not influence the pattern): a
    contribution that happens to evaluate to zero at the probe point is still
    a structural nonzero.
    """

    __slots__ = ("rows", "cols")

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []

    def add(self, row: int, col: int, value) -> None:
        """Record the position of the contribution."""
        self.rows.append(int(row))
        self.cols.append(int(col))


class PatternValueFiller:
    """Jacobian accumulator that writes stamp values into a flat buffer.

    ``buffer`` has shape ``(P, nnz_raw)``; contribution ``k`` (in recorded
    pattern order) lands in column ``k``.  The expected (row, col) sequence
    is verified against the recorded pattern so that a device whose stamp
    structure silently depended on ``x`` fails loudly instead of corrupting
    the assembled Jacobian.
    """

    __slots__ = ("buffer", "_rows", "_cols", "_cursor")

    def __init__(self, buffer: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> None:
        self.buffer = buffer
        self._rows = rows
        self._cols = cols
        self._cursor = 0

    def add(self, row: int, col: int, value) -> None:
        """Store the contribution value at the next recorded pattern slot."""
        k = self._cursor
        if k >= self._rows.size or self._rows[k] != row or self._cols[k] != col:
            raise DeviceError(
                "device stamp structure changed between pattern compilation and "
                "evaluation; stamps must make the same _add_mat calls in the same "
                "order for every x (got entry "
                f"({row}, {col}) at position {k})"
            )
        self.buffer[:, k] = value
        self._cursor += 1

    @property
    def cursor(self) -> int:
        """Number of contributions written so far."""
        return self._cursor


@dataclass(frozen=True)
class BatchSpec:
    """Declaration of a device's vectorised (batched) stamp evaluation.

    The batched evaluation engine (:mod:`repro.circuits.engine`) groups the
    devices of a circuit by :attr:`key` and evaluates each group with a
    single elementwise *kernel* call over all ``(P, n_group)`` points at
    once, instead of dispatching ``stamp_static`` / ``stamp_dynamic`` per
    device.  A spec describes one device's membership in that scheme:

    * :attr:`indices` — the device's *terminals*: the global unknown indices
      it reads (node voltages first, then branch-current unknowns, in
      whatever order the kernels expect them; ``-1`` denotes ground).
    * ``static_params`` / ``dynamic_params`` — scalar parameters, stacked by
      the engine into ``(n_group,)`` arrays handed to the respective kernel.
      Any value derived from the device parameters must be computed here
      *exactly* as the loop stamps compute it, so the kernels reproduce the
      loop path bit for bit.
    * ``static_vec`` / ``static_mat`` — the stamp slots of
      ``stamp_static``: residual rows, and ``(row, col)`` Jacobian entries,
      given as positions into :attr:`indices`, in the *same order* as the
      device's ``_add_vec`` / ``_add_mat`` calls.  Slots that resolve to
      ground are dropped by the engine exactly as the loop stamps drop them.
    * ``dynamic_vec`` / ``dynamic_mat`` — likewise for ``stamp_dynamic``.
    * ``static_kernel`` / ``dynamic_kernel`` — elementwise evaluators with
      signature ``kernel(V, params, need_jacobian)`` where ``V[t]`` is the
      ``(P, n_group)`` value of terminal ``t`` and ``params[j]`` the stacked
      ``(n_group,)`` parameter ``j``.  They return
      ``(vec_values, mat_values)`` aligned with the slot declarations
      (``mat_values`` may be ``None`` when ``need_jacobian`` is false);
      each value may be a scalar, an ``(n_group,)`` array (point-independent
      stamps) or a full ``(P, n_group)`` array.

    Devices in a group share the kernels of the group's first member, so
    :attr:`key` must capture everything *structural*: the device class and
    any parameter-dependent branching (a diode with and one without charge
    storage stamp different slots and must not share a group).  The engine
    validates every spec against the device's recorded stamp patterns at
    compile time, so a spec that disagrees with the loop stamps fails loudly
    rather than silently corrupting results.
    """

    key: tuple
    indices: tuple[int, ...]
    static_params: tuple[float, ...] = ()
    dynamic_params: tuple[float, ...] = ()
    static_vec: tuple[int, ...] = ()
    static_mat: tuple[tuple[int, int], ...] = ()
    dynamic_vec: tuple[int, ...] = ()
    dynamic_mat: tuple[tuple[int, int], ...] = ()
    static_kernel: Callable | None = field(default=None, compare=False)
    dynamic_kernel: Callable | None = field(default=None, compare=False)
    #: Declare the kernel's Jacobian values independent of ``x`` (linear
    #: devices).  The engine then captures them once at compile time into a
    #: per-point-count template buffer and never asks the kernel for them
    #: again — per evaluation the kernel runs with ``need_jacobian=False``.
    static_mat_constant: bool = False
    dynamic_mat_constant: bool = False


def linear_capacitance_kernel(active_slots):
    """Batched kernel for the ``add_linear_cap`` pattern (MOSFET, BJT, ...).

    ``active_slots`` lists (node_a, node_b) terminal positions of the
    structurally present capacitances; one capacitance parameter array is
    expected per active slot, in the same order.  The Jacobian values are
    the capacitances themselves, so specs using this kernel should declare
    ``dynamic_mat_constant=True``.
    """

    def kernel(V, params, need_jacobian):
        vec = []
        mat = [] if need_jacobian else None
        for (a, b), cap in zip(active_slots, params):
            charge = cap * (V[a] - V[b])
            vec += [charge, -charge]
            if need_jacobian:
                mat += [cap, -cap, -cap, cap]
        return tuple(vec), (tuple(mat) if need_jacobian else None)

    return kernel


def linear_capacitance_slots(active_slots):
    """(vec, mat) slot declarations matching :func:`linear_capacitance_kernel`."""
    vec: list[int] = []
    mat: list[tuple[int, int]] = []
    for a, b in active_slots:
        vec += [a, b]
        mat += [(a, a), (a, b), (b, a), (b, b)]
    return tuple(vec), tuple(mat)


class Device:
    """Abstract network element.

    Subclasses declare their node connections via :attr:`node_names` and, if
    they need branch-current unknowns, override :meth:`n_branch_unknowns`.
    Index resolution (node name -> position in the unknown vector) is
    performed once by :meth:`bind`, called from ``Circuit.compile()``.
    """

    def __init__(self, name: str, node_names: Sequence[str]) -> None:
        if not name:
            raise DeviceError("device name must be a non-empty string")
        self.name = str(name)
        self.node_names: tuple[str, ...] = tuple(str(n) for n in node_names)
        if len(self.node_names) == 0:
            raise DeviceError(f"device {name!r} must connect to at least one node")
        self._node_idx: tuple[int, ...] = ()
        self._branch_idx: tuple[int, ...] = ()
        self._bound = False

    # -- topology ------------------------------------------------------
    def n_branch_unknowns(self) -> int:
        """Number of extra (branch-current) unknowns this device introduces."""
        return 0

    def branch_labels(self) -> tuple[str, ...]:
        """Labels for the branch unknowns (used in result reporting)."""
        return tuple(f"i({self.name})#{k}" for k in range(self.n_branch_unknowns()))

    def bind(self, node_indices: Sequence[int], branch_indices: Sequence[int]) -> None:
        """Resolve node/branch positions in the global unknown vector.

        ``node_indices`` contains one index per entry of :attr:`node_names`
        (-1 denotes the ground node); ``branch_indices`` contains
        ``n_branch_unknowns()`` indices.
        """
        if len(node_indices) != len(self.node_names):
            raise DeviceError(
                f"device {self.name!r} expected {len(self.node_names)} node indices, "
                f"got {len(node_indices)}"
            )
        if len(branch_indices) != self.n_branch_unknowns():
            raise DeviceError(
                f"device {self.name!r} expected {self.n_branch_unknowns()} branch indices, "
                f"got {len(branch_indices)}"
            )
        self._node_idx = tuple(int(i) for i in node_indices)
        self._branch_idx = tuple(int(i) for i in branch_indices)
        self._bound = True

    @property
    def is_bound(self) -> bool:
        """Whether :meth:`bind` has been called."""
        return self._bound

    def _require_bound(self) -> None:
        if not self._bound:
            raise DeviceError(
                f"device {self.name!r} has not been bound to a circuit; call Circuit.compile()"
            )

    # -- voltage access helpers -----------------------------------------
    @staticmethod
    def _voltage(X: np.ndarray, index: int) -> np.ndarray:
        """Voltage of node ``index`` for every evaluation point (0 for ground)."""
        if index < 0:
            return np.zeros(X.shape[0])
        return X[:, index]

    @staticmethod
    def _add_vec(vec, index: int, value: np.ndarray | float) -> None:
        """Accumulate ``value`` into column ``index`` of a (P, n) vector array.

        ``vec`` is normally a dense ``(P, n)`` accumulator; like
        :meth:`_add_mat` it may also be a recording/filling accumulator
        object (:class:`VectorRecorder` and the batched engine's value
        fillers), which is how the residual scatter maps of the batched
        evaluation engine are compiled.  Ground rows (negative indices) are
        dropped here in both cases.
        """
        if index >= 0:
            if isinstance(vec, np.ndarray):
                vec[:, index] += value
            else:
                vec.add(index, value)

    @staticmethod
    def _add_mat(mat, row: int, col: int, value: np.ndarray | float) -> None:
        """Accumulate ``value`` at (row, col) of a Jacobian accumulator.

        ``mat`` is either a dense ``(P, n, n)`` array (reference path) or a
        stamp accumulator (:class:`PatternRecorder`, :class:`PatternValueFiller`,
        :class:`NullStamps`).  Ground rows/columns (negative indices) are
        dropped here so device code never special-cases them.
        """
        if row >= 0 and col >= 0:
            if isinstance(mat, np.ndarray):
                mat[:, row, col] += value
            else:
                mat.add(row, col, value)

    # -- stamps (defaults: contribute nothing) ---------------------------
    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        """Accumulate conductive currents ``f(x)`` and their Jacobian ``G``."""

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        """Accumulate charges/fluxes ``q(x)`` and their Jacobian ``C``."""

    def stamp_source(self, times: np.ndarray, B: np.ndarray) -> None:
        """Accumulate the excitation ``b(t)`` at the given ``times`` (shape (P,))."""

    def stamp_source_bivariate(
        self, t1: np.ndarray, t2: np.ndarray, scales, B: np.ndarray
    ) -> None:
        """Accumulate the multi-time excitation ``b_hat(t1, t2)``.

        The default maps a time-invariant ``stamp_source`` through the
        diagonal, which is correct for any device whose excitation does not
        depend on time (e.g. DC supplies); time-varying sources override
        this.
        """
        self.stamp_source(np.asarray(t1, dtype=float), B)

    def batch_spec(self) -> BatchSpec | None:
        """Batched-evaluation declaration of this device (see :class:`BatchSpec`).

        ``None`` (the default) means the device has no vectorised kernel;
        the batched engine then falls back to running its loop stamps into
        the group buffers, so correctness never depends on a spec existing.
        Called once per engine compilation, after :meth:`bind`.
        """
        return None

    def is_nonlinear(self) -> bool:
        """Whether the device's ``f`` or ``q`` depend nonlinearly on ``x``."""
        return False

    def has_dynamics(self) -> bool:
        """Whether the device contributes to ``q`` (charge/flux storage)."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nodes = ",".join(self.node_names)
        return f"{type(self).__name__}({self.name!r}, nodes=[{nodes}])"


class TwoTerminal(Device):
    """Convenience base class for devices with exactly two terminals."""

    def __init__(self, name: str, node_pos: str, node_neg: str) -> None:
        super().__init__(name, (node_pos, node_neg))

    @property
    def node_pos(self) -> str:
        """Name of the positive terminal node."""
        return self.node_names[0]

    @property
    def node_neg(self) -> str:
        """Name of the negative terminal node."""
        return self.node_names[1]

    def _terminal_indices(self) -> tuple[int, int]:
        self._require_bound()
        return self._node_idx[0], self._node_idx[1]

    def branch_voltage(self, X: np.ndarray) -> np.ndarray:
        """Voltage across the device, ``v(pos) - v(neg)``, per evaluation point."""
        p, n = self._terminal_indices()
        return self._voltage(X, p) - self._voltage(X, n)
