"""Behavioural (idealised) nonlinear elements.

These devices capture a nonlinearity directly as an equation rather than as a
physical transistor model.  They are used by:

* the *ideal mixing* example of Section 2 of the paper
  (:class:`MultiplierCurrentSource` produces ``i = K * v_a * v_b``, the
  product that generates the difference tone explicitly),
* the unbalanced switching-mixer example (:class:`SmoothSwitch` is a
  voltage-controlled conductance that switches sharply, the archetype of the
  strongly nonlinear waveforms harmonic balance struggles with), and
* tests that need a simple polynomial nonlinearity
  (:class:`PolynomialConductance`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...utils.exceptions import DeviceError
from ...utils.validation import check_finite, check_positive
from .base import Device, TwoTerminal

__all__ = ["MultiplierCurrentSource", "SmoothSwitch", "PolynomialConductance"]


class MultiplierCurrentSource(Device):
    """Ideal multiplying transconductor: ``i_out = gain * v(a) * v(b)``.

    The output current flows from ``out_pos`` through the source to
    ``out_neg``.  Node order: (out_pos, out_neg, in_a_pos, in_a_neg,
    in_b_pos, in_b_neg).  Driving the two inputs with closely spaced tones
    reproduces the ideal mixing operation ``z(t) = x(t) * y(t)`` of Eq. (5)
    in the paper.
    """

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        in_a_pos: str,
        in_a_neg: str,
        in_b_pos: str,
        in_b_neg: str,
        gain: float = 1.0,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, in_a_pos, in_a_neg, in_b_pos, in_b_neg))
        self.gain = check_finite("gain", gain)

    def is_nonlinear(self) -> bool:
        return True

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        op, on, ap, an, bp, bn = self._node_idx
        va = self._voltage(X, ap) - self._voltage(X, an)
        vb = self._voltage(X, bp) - self._voltage(X, bn)
        current = self.gain * va * vb
        self._add_vec(F, op, current)
        self._add_vec(F, on, -current)
        # d i / d va = gain * vb ; d i / d vb = gain * va
        dia = self.gain * vb
        dib = self.gain * va
        for node, sign in ((op, 1.0), (on, -1.0)):
            self._add_mat(G, node, ap, sign * dia)
            self._add_mat(G, node, an, -sign * dia)
            self._add_mat(G, node, bp, sign * dib)
            self._add_mat(G, node, bn, -sign * dib)


class SmoothSwitch(Device):
    """Voltage-controlled switch with a smooth (tanh) transition.

    The conductance between the two switched terminals moves between
    ``g_off`` and ``g_on`` as the control voltage crosses ``threshold``::

        g(v_ctrl) = g_off + (g_on - g_off) * (1 + tanh((v_ctrl - threshold)/width)) / 2

    A small ``transition_width`` makes the device behave like an on/off
    switch driven by the LO — the textbook "switching mixer" nonlinearity —
    while remaining differentiable for Newton.  Node order: (pos, neg,
    ctrl_pos, ctrl_neg).
    """

    def __init__(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        *,
        g_on: float = 1e-2,
        g_off: float = 1e-9,
        threshold: float = 0.0,
        transition_width: float = 0.05,
    ) -> None:
        super().__init__(name, (node_pos, node_neg, ctrl_pos, ctrl_neg))
        self.g_on = check_positive("g_on", g_on)
        self.g_off = check_positive("g_off", g_off)
        if self.g_off >= self.g_on:
            raise DeviceError("g_off must be smaller than g_on")
        self.threshold = check_finite("threshold", threshold)
        self.transition_width = check_positive("transition_width", transition_width)

    def is_nonlinear(self) -> bool:
        return True

    def _conductance(self, v_ctrl: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Conductance and its derivative w.r.t. the control voltage."""
        u = (v_ctrl - self.threshold) / self.transition_width
        s = np.tanh(u)
        g = self.g_off + (self.g_on - self.g_off) * 0.5 * (1.0 + s)
        dg = (self.g_on - self.g_off) * 0.5 * (1.0 - s**2) / self.transition_width
        return g, dg

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        p, n, cp, cn = self._node_idx
        v_sw = self._voltage(X, p) - self._voltage(X, n)
        v_ctrl = self._voltage(X, cp) - self._voltage(X, cn)
        g, dg = self._conductance(v_ctrl)
        current = g * v_sw
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        # Derivatives w.r.t. the switched terminals.
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)
        # Derivatives w.r.t. the control terminals.
        di_dctrl = dg * v_sw
        self._add_mat(G, p, cp, di_dctrl)
        self._add_mat(G, p, cn, -di_dctrl)
        self._add_mat(G, n, cp, -di_dctrl)
        self._add_mat(G, n, cn, di_dctrl)


class PolynomialConductance(TwoTerminal):
    """Two-terminal element whose current is a polynomial in its voltage.

    ``i(v) = c1 * v + c2 * v^2 + c3 * v^3 + ...`` (no constant term, so the
    element is passive at ``v = 0``).  Used by distortion tests and by the
    harmonic-balance cross-checks, where the exact spectrum of a polynomial
    nonlinearity under sinusoidal drive is known in closed form.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, coefficients: Sequence[float]) -> None:
        super().__init__(name, node_pos, node_neg)
        coeffs = [check_finite(f"coefficients[{i}]", c) for i, c in enumerate(coefficients)]
        if len(coeffs) == 0:
            raise DeviceError("PolynomialConductance needs at least one coefficient")
        self.coefficients = tuple(coeffs)

    def is_nonlinear(self) -> bool:
        return len(self.coefficients) > 1

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        v = self.branch_voltage(X)
        current = np.zeros_like(v)
        conductance = np.zeros_like(v)
        for k, coeff in enumerate(self.coefficients, start=1):
            current = current + coeff * v**k
            conductance = conductance + k * coeff * v ** (k - 1)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, conductance)
        self._add_mat(G, p, n, -conductance)
        self._add_mat(G, n, p, -conductance)
        self._add_mat(G, n, n, conductance)
