"""Behavioural (idealised) nonlinear elements.

These devices capture a nonlinearity directly as an equation rather than as a
physical transistor model.  They are used by:

* the *ideal mixing* example of Section 2 of the paper
  (:class:`MultiplierCurrentSource` produces ``i = K * v_a * v_b``, the
  product that generates the difference tone explicitly),
* the unbalanced switching-mixer example (:class:`SmoothSwitch` is a
  voltage-controlled conductance that switches sharply, the archetype of the
  strongly nonlinear waveforms harmonic balance struggles with), and
* tests that need a simple polynomial nonlinearity
  (:class:`PolynomialConductance`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...utils.exceptions import DeviceError
from ...utils.validation import check_finite, check_positive
from .base import BatchSpec, Device, TwoTerminal

__all__ = ["MultiplierCurrentSource", "SmoothSwitch", "PolynomialConductance"]


def _multiplier_static_kernel(V, params, need_jacobian):
    (gain,) = params
    va = V[2] - V[3]
    vb = V[4] - V[5]
    current = gain * va * vb
    vec = (current, -current)
    if not need_jacobian:
        return vec, None
    dia = gain * vb
    dib = gain * va
    return vec, (dia, -dia, dib, -dib, -dia, dia, -dib, dib)


def _smooth_switch_static_kernel(V, params, need_jacobian):
    g_on, g_off, threshold, transition_width = params
    v_sw = V[0] - V[1]
    v_ctrl = V[2] - V[3]
    u = (v_ctrl - threshold) / transition_width
    s = np.tanh(u)
    g = g_off + (g_on - g_off) * 0.5 * (1.0 + s)
    current = g * v_sw
    vec = (current, -current)
    if not need_jacobian:
        return vec, None
    dg = (g_on - g_off) * 0.5 * (1.0 - s**2) / transition_width
    di_dctrl = dg * v_sw
    return vec, (g, -g, -g, g, di_dctrl, -di_dctrl, -di_dctrl, di_dctrl)


def _polynomial_static_kernel(n_coefficients: int):
    def kernel(V, params, need_jacobian):
        v = V[0] - V[1]
        current = np.zeros_like(v)
        conductance = np.zeros_like(v)
        for k in range(1, n_coefficients + 1):
            coeff = params[k - 1]
            current = current + coeff * v**k
            if need_jacobian:
                conductance = conductance + k * coeff * v ** (k - 1)
        vec = (current, -current)
        if not need_jacobian:
            return vec, None
        return vec, (conductance, -conductance, -conductance, conductance)

    return kernel


class MultiplierCurrentSource(Device):
    """Ideal multiplying transconductor: ``i_out = gain * v(a) * v(b)``.

    The output current flows from ``out_pos`` through the source to
    ``out_neg``.  Node order: (out_pos, out_neg, in_a_pos, in_a_neg,
    in_b_pos, in_b_neg).  Driving the two inputs with closely spaced tones
    reproduces the ideal mixing operation ``z(t) = x(t) * y(t)`` of Eq. (5)
    in the paper.
    """

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        in_a_pos: str,
        in_a_neg: str,
        in_b_pos: str,
        in_b_neg: str,
        gain: float = 1.0,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, in_a_pos, in_a_neg, in_b_pos, in_b_neg))
        self.gain = check_finite("gain", gain)

    def is_nonlinear(self) -> bool:
        return True

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        op, on, ap, an, bp, bn = self._node_idx
        va = self._voltage(X, ap) - self._voltage(X, an)
        vb = self._voltage(X, bp) - self._voltage(X, bn)
        current = self.gain * va * vb
        self._add_vec(F, op, current)
        self._add_vec(F, on, -current)
        # d i / d va = gain * vb ; d i / d vb = gain * va
        dia = self.gain * vb
        dib = self.gain * va
        for node, sign in ((op, 1.0), (on, -1.0)):
            self._add_mat(G, node, ap, sign * dia)
            self._add_mat(G, node, an, -sign * dia)
            self._add_mat(G, node, bp, sign * dib)
            self._add_mat(G, node, bn, -sign * dib)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        return BatchSpec(
            key=("MultiplierCurrentSource",),
            indices=self._node_idx,
            static_params=(self.gain,),
            static_vec=(0, 1),
            static_mat=(
                (0, 2), (0, 3), (0, 4), (0, 5),
                (1, 2), (1, 3), (1, 4), (1, 5),
            ),
            static_kernel=_multiplier_static_kernel,
        )


class SmoothSwitch(Device):
    """Voltage-controlled switch with a smooth (tanh) transition.

    The conductance between the two switched terminals moves between
    ``g_off`` and ``g_on`` as the control voltage crosses ``threshold``::

        g(v_ctrl) = g_off + (g_on - g_off) * (1 + tanh((v_ctrl - threshold)/width)) / 2

    A small ``transition_width`` makes the device behave like an on/off
    switch driven by the LO — the textbook "switching mixer" nonlinearity —
    while remaining differentiable for Newton.  Node order: (pos, neg,
    ctrl_pos, ctrl_neg).
    """

    def __init__(
        self,
        name: str,
        node_pos: str,
        node_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        *,
        g_on: float = 1e-2,
        g_off: float = 1e-9,
        threshold: float = 0.0,
        transition_width: float = 0.05,
    ) -> None:
        super().__init__(name, (node_pos, node_neg, ctrl_pos, ctrl_neg))
        self.g_on = check_positive("g_on", g_on)
        self.g_off = check_positive("g_off", g_off)
        if self.g_off >= self.g_on:
            raise DeviceError("g_off must be smaller than g_on")
        self.threshold = check_finite("threshold", threshold)
        self.transition_width = check_positive("transition_width", transition_width)

    def is_nonlinear(self) -> bool:
        return True

    def _conductance(self, v_ctrl: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Conductance and its derivative w.r.t. the control voltage."""
        u = (v_ctrl - self.threshold) / self.transition_width
        s = np.tanh(u)
        g = self.g_off + (self.g_on - self.g_off) * 0.5 * (1.0 + s)
        dg = (self.g_on - self.g_off) * 0.5 * (1.0 - s**2) / self.transition_width
        return g, dg

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        p, n, cp, cn = self._node_idx
        v_sw = self._voltage(X, p) - self._voltage(X, n)
        v_ctrl = self._voltage(X, cp) - self._voltage(X, cn)
        g, dg = self._conductance(v_ctrl)
        current = g * v_sw
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        # Derivatives w.r.t. the switched terminals.
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)
        # Derivatives w.r.t. the control terminals.
        di_dctrl = dg * v_sw
        self._add_mat(G, p, cp, di_dctrl)
        self._add_mat(G, p, cn, -di_dctrl)
        self._add_mat(G, n, cp, -di_dctrl)
        self._add_mat(G, n, cn, di_dctrl)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        return BatchSpec(
            key=("SmoothSwitch",),
            indices=self._node_idx,
            static_params=(self.g_on, self.g_off, self.threshold, self.transition_width),
            static_vec=(0, 1),
            static_mat=(
                (0, 0), (0, 1), (1, 0), (1, 1),
                (0, 2), (0, 3), (1, 2), (1, 3),
            ),
            static_kernel=_smooth_switch_static_kernel,
        )


class PolynomialConductance(TwoTerminal):
    """Two-terminal element whose current is a polynomial in its voltage.

    ``i(v) = c1 * v + c2 * v^2 + c3 * v^3 + ...`` (no constant term, so the
    element is passive at ``v = 0``).  Used by distortion tests and by the
    harmonic-balance cross-checks, where the exact spectrum of a polynomial
    nonlinearity under sinusoidal drive is known in closed form.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, coefficients: Sequence[float]) -> None:
        super().__init__(name, node_pos, node_neg)
        coeffs = [check_finite(f"coefficients[{i}]", c) for i, c in enumerate(coefficients)]
        if len(coeffs) == 0:
            raise DeviceError("PolynomialConductance needs at least one coefficient")
        self.coefficients = tuple(coeffs)

    def is_nonlinear(self) -> bool:
        return len(self.coefficients) > 1

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        v = self.branch_voltage(X)
        current = np.zeros_like(v)
        conductance = np.zeros_like(v)
        for k, coeff in enumerate(self.coefficients, start=1):
            current = current + coeff * v**k
            conductance = conductance + k * coeff * v ** (k - 1)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, conductance)
        self._add_mat(G, p, n, -conductance)
        self._add_mat(G, n, p, -conductance)
        self._add_mat(G, n, n, conductance)

    def batch_spec(self) -> BatchSpec:
        p, n = self._terminal_indices()
        return BatchSpec(
            key=("PolynomialConductance", len(self.coefficients)),
            indices=(p, n),
            static_params=self.coefficients,
            static_vec=(0, 1),
            static_mat=((0, 0), (0, 1), (1, 0), (1, 1)),
            static_kernel=_polynomial_static_kernel(len(self.coefficients)),
        )
