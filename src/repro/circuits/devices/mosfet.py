"""Level-1 (Shichman-Hodges) MOSFET model.

The paper's mixers are RF-CMOS switching circuits; their defining feature for
the numerical method is the *strongly nonlinear, switching* drain current,
not the fine detail of a deep-submicron model.  The classic level-1 square-law
model with channel-length modulation reproduces that behaviour:

* cutoff:     ``Id = 0``                               for ``Vgs <= Vth``
* triode:     ``Id = k (Vgst Vds - Vds^2/2)(1 + lambda Vds)``  for ``Vds < Vgst``
* saturation: ``Id = k/2 Vgst^2 (1 + lambda Vds)``     otherwise

with ``k = KP * W / L`` and ``Vgst = Vgs - Vth``.  The model is evaluated
symmetrically: when ``Vds < 0`` the drain and source roles are exchanged, so
the characteristic is continuous through ``Vds = 0`` (important for the
switching mixers, whose transistors spend time in both half-planes).

Charge storage uses constant gate-source / gate-drain overlap capacitances
plus optional drain/source junction capacitances to the bulk terminal.  This
is a deliberate simplification of the Meyer model (documented in DESIGN.md):
it keeps ``q(x)`` charge-conserving and smooth, which the coarse multi-time
grids of the MPDE method appreciate, while retaining the switching-induced
sharp waveforms at the circuit level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...utils.exceptions import DeviceError
from ...utils.validation import check_nonnegative, check_positive
from .base import BatchSpec, Device, linear_capacitance_kernel, linear_capacitance_slots

__all__ = ["MOSFETParams", "MOSFET", "NMOS", "PMOS"]

# Terminal order inside a MOSFET BatchSpec: (drain, gate, source, bulk).
_D, _G, _S, _B = 0, 1, 2, 3
#: The four overlap/junction capacitances in the order ``stamp_dynamic``
#: stamps them, as (node_a, node_b) terminal positions.
_CAP_SLOTS = ((_G, _S), (_G, _D), (_D, _B), (_S, _B))


def _region_ids(vgst_sub, vds_sub, beta_sub, lam_sub, triode_sub):
    """Loop-stamp triode/saturation formulas on one compacted region.

    The inputs are the elements of ONE operating region (all triode or all
    saturation, ``triode_sub`` says which); the expressions — and their
    grouping — are copied from :meth:`MOSFET._ids`, so elementwise the
    results are identical to the loop path's full-array evaluation.
    """
    clm = 1.0 + lam_sub * vds_sub
    if triode_sub:
        quad = beta_sub * (vgst_sub * vds_sub - 0.5 * vds_sub**2)
        ids = quad * clm
        gm = beta_sub * vds_sub * clm
        gds = beta_sub * (vgst_sub - vds_sub) * clm + quad * lam_sub
    else:
        half_quad = 0.5 * beta_sub * vgst_sub**2
        ids = half_quad * clm
        gm = beta_sub * vgst_sub * clm
        gds = half_quad * lam_sub
    return ids, gm, gds


def _mosfet_static_kernel(polarity: float):
    """Masked batched :meth:`MOSFET._drain_current` plus the KCL stamp values.

    Where the loop path evaluates the triode and saturation formulas of both
    the forward and the swapped (reverse) device on every point and selects
    afterwards with ``np.where`` chains, this kernel computes each of the
    four (direction x region) branches only on the elements that actually
    use it, scattering into zero-initialised outputs.  Switching circuits —
    the paper's regime — spend most (point, device) pairs in cutoff, where
    nothing is computed at all.  Elementwise the surviving values match the
    loop path's exactly; cutoff entries are 0.0 either way.

    The polarity is captured as a scalar (and is part of the group key) so
    the all-NMOS / all-PMOS common case skips the frame-mapping multiplies —
    multiplying by 1.0 is an exact no-op, so skipping it preserves values.
    """
    pol = polarity

    def kernel(V, params, need_jacobian):
        vto, beta, lam = params
        vd, vg, vs = V[_D], V[_G], V[_S]
        if pol == 1.0:
            vgp, vdp, vsp = vg, vd, vs
        else:
            vgp, vdp, vsp = pol * vg, pol * vd, pol * vs
        vds = vdp - vsp
        forward = vds >= 0.0
        vto_effective = pol * vto
        vgst_f = (vgp - vsp) - vto_effective
        vgst_r = (vgp - vdp) - vto_effective

        shape = vds.shape
        n_points = shape[1]
        current = np.zeros(shape)
        cur_flat = current.ravel()
        if need_jacobian:
            d_vg = np.zeros(shape)
            d_vd = np.zeros(shape)
            d_vs = np.zeros(shape)
            d_vg_flat, d_vd_flat, d_vs_flat = d_vg.ravel(), d_vd.ravel(), d_vs.ravel()

        beta_col = beta[:, 0]
        lam_col = lam[:, 0]
        reverse = ~forward
        for direction_forward, vgst, needed in (
            (True, vgst_f, forward),
            (False, vgst_r, reverse),
        ):
            # Region predicates exactly as the loop path writes them (NaN
            # voltages land in the saturation branch there; keep that).
            active = needed & ~(vgst <= 0.0)
            if not active.any():
                continue
            vds_sign = vds if direction_forward else -vds
            in_triode = vds_sign < vgst
            vgst_flat = vgst.ravel()
            vds_flat = vds_sign.ravel()
            for triode_region in (True, False):
                mask = active & (in_triode if triode_region else ~in_triode)
                index = np.flatnonzero(mask.ravel())
                if index.size == 0:
                    continue
                member = index // n_points  # per-element device row
                ids, gm, gds = _region_ids(
                    vgst_flat.take(index),
                    vds_flat.take(index),
                    beta_col.take(member),
                    lam_col.take(member),
                    triode_region,
                )
                # IEEE negation is exact (and addition sign-symmetric), so
                # region-filling is bit-identical to the loop path's
                # where-selected full-array stamps.
                if direction_forward:
                    cur_flat[index] = pol * ids if pol != 1.0 else ids
                    if need_jacobian:
                        d_vg_flat[index] = gm
                        d_vd_flat[index] = gds
                        d_vs_flat[index] = -gm - gds
                else:
                    # Terminal roles swapped (MOSFET._drain_current): the
                    # current into the drain is the negative of the swapped
                    # device's, d/dvd picks up gm_r + gds_r.
                    cur_flat[index] = pol * -ids if pol != 1.0 else -ids
                    if need_jacobian:
                        d_vg_flat[index] = -gm
                        d_vd_flat[index] = gm + gds
                        d_vs_flat[index] = -gds
        vec = (current, -current)
        if not need_jacobian:
            return vec, None
        return vec, (d_vg, d_vd, d_vs, -d_vg, -d_vd, -d_vs)

    return kernel


@dataclass(frozen=True)
class MOSFETParams:
    """Level-1 MOSFET parameters.

    Attributes
    ----------
    vto:
        Threshold voltage (positive for enhancement NMOS, negative for PMOS).
    kp:
        Process transconductance ``KP`` in A/V^2 (``u0 * Cox``).
    w, l:
        Channel width and length in metres; only the ratio matters here.
    lambda_:
        Channel-length modulation in 1/V.
    cgs, cgd:
        Constant gate-source / gate-drain capacitances in farads.
    cdb, csb:
        Constant drain-bulk / source-bulk capacitances in farads.
    """

    vto: float = 0.7
    kp: float = 120e-6
    w: float = 10e-6
    l: float = 1e-6
    lambda_: float = 0.02
    cgs: float = 0.0
    cgd: float = 0.0
    cdb: float = 0.0
    csb: float = 0.0

    def __post_init__(self) -> None:
        check_positive("kp", self.kp)
        check_positive("w", self.w)
        check_positive("l", self.l)
        check_nonnegative("lambda_", self.lambda_)
        check_nonnegative("cgs", self.cgs)
        check_nonnegative("cgd", self.cgd)
        check_nonnegative("cdb", self.cdb)
        check_nonnegative("csb", self.csb)

    @property
    def beta(self) -> float:
        """Device transconductance factor ``KP * W / L``."""
        return self.kp * self.w / self.l


class MOSFET(Device):
    """Four-terminal MOSFET (drain, gate, source, bulk).

    ``polarity = +1`` gives an NMOS, ``-1`` a PMOS.  The bulk terminal only
    participates through the (optional) junction capacitances; body effect on
    the threshold voltage is not modelled.
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str | None = None,
        params: MOSFETParams | None = None,
        polarity: int = 1,
    ) -> None:
        bulk_node = bulk if bulk is not None else source
        super().__init__(name, (drain, gate, source, bulk_node))
        if polarity not in (1, -1):
            raise DeviceError("polarity must be +1 (NMOS) or -1 (PMOS)")
        self.params = params or MOSFETParams()
        self.polarity = polarity

    def is_nonlinear(self) -> bool:
        return True

    def has_dynamics(self) -> bool:
        p = self.params
        return any(c > 0.0 for c in (p.cgs, p.cgd, p.cdb, p.csb))

    # -- drain-current model ---------------------------------------------
    def _ids(self, vgs: np.ndarray, vds: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normal-mode (``vds >= 0``) drain current and partial derivatives.

        Returns ``(id, gm, gds)`` where ``gm = d id / d vgs`` and
        ``gds = d id / d vds``.
        """
        p = self.params
        beta = p.beta
        lam = p.lambda_
        # The drain-current formula is evaluated in the NMOS-equivalent frame
        # (voltages already multiplied by the polarity), so the threshold must
        # be mapped into that frame too: a PMOS with vto = -0.7 V behaves like
        # an NMOS with a +0.7 V threshold.
        vto_effective = self.polarity * p.vto
        vgst = np.asarray(vgs - vto_effective, dtype=float)
        vds = np.asarray(vds, dtype=float)

        cutoff = vgst <= 0.0
        triode = (~cutoff) & (vds < vgst)
        saturation = (~cutoff) & (~triode)

        clm = 1.0 + lam * vds

        id_triode = beta * (vgst * vds - 0.5 * vds**2) * clm
        gm_triode = beta * vds * clm
        gds_triode = beta * (vgst - vds) * clm + beta * (vgst * vds - 0.5 * vds**2) * lam

        id_sat = 0.5 * beta * vgst**2 * clm
        gm_sat = beta * vgst * clm
        gds_sat = 0.5 * beta * vgst**2 * lam

        ids = np.where(cutoff, 0.0, np.where(triode, id_triode, id_sat))
        gm = np.where(cutoff, 0.0, np.where(triode, gm_triode, gm_sat))
        gds = np.where(cutoff, 0.0, np.where(triode, gds_triode, gds_sat))
        del saturation  # kept for readability of the region split above
        return ids, gm, gds

    def _drain_current(
        self, vg: np.ndarray, vd: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Drain current (into the drain terminal) and derivatives w.r.t. vg, vd, vs.

        Handles polarity (PMOS) and source/drain swap for ``vds < 0`` so the
        characteristic is symmetric and continuous at ``vds = 0``.
        """
        pol = float(self.polarity)
        # Work in the NMOS-equivalent voltage frame.
        vgp, vdp, vsp = pol * vg, pol * vd, pol * vs
        vds = vdp - vsp
        forward = vds >= 0.0

        # Forward operation: source acts as source.
        vgs_f = vgp - vsp
        ids_f, gm_f, gds_f = self._ids(vgs_f, vds)
        # Reverse operation: drain and source swap roles; the current into
        # the drain terminal is the negative of the swapped-device current.
        vgs_r = vgp - vdp
        ids_r, gm_r, gds_r = self._ids(vgs_r, -vds)

        # Derivatives w.r.t. the primed (NMOS-frame) terminal voltages.
        # Forward:  ids' = I(vg'-vs', vd'-vs')
        # Reverse:  ids' = -I(vg'-vd', vs'-vd')  (terminal roles swapped)
        ids = np.where(forward, ids_f, -ids_r)
        d_vg = np.where(forward, gm_f, -gm_r)
        d_vd = np.where(forward, gds_f, gm_r + gds_r)
        d_vs = np.where(forward, -gm_f - gds_f, -gds_r)

        # Map back from the NMOS frame: v' = pol * v, and the physical current
        # into the drain terminal is pol * ids'.  The chain rule gives
        # d(pol * ids')/dv = pol * (d ids'/dv') * pol = d ids'/dv'.
        current = pol * ids
        return current, d_vg, d_vd, d_vs

    # -- stamps -------------------------------------------------------------
    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        d, g, s, _b = self._node_idx
        vd = self._voltage(X, d)
        vg = self._voltage(X, g)
        vs = self._voltage(X, s)
        current, d_vg, d_vd, d_vs = self._drain_current(vg, vd, vs)
        # Current enters the drain terminal and leaves at the source terminal.
        self._add_vec(F, d, current)
        self._add_vec(F, s, -current)
        self._add_mat(G, d, g, d_vg)
        self._add_mat(G, d, d, d_vd)
        self._add_mat(G, d, s, d_vs)
        self._add_mat(G, s, g, -d_vg)
        self._add_mat(G, s, d, -d_vd)
        self._add_mat(G, s, s, -d_vs)

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        if not self.has_dynamics():
            return
        self._require_bound()
        d, g, s, b = self._node_idx
        p = self.params
        vd = self._voltage(X, d)
        vg = self._voltage(X, g)
        vs = self._voltage(X, s)
        vb = self._voltage(X, b)

        def add_linear_cap(node_a: int, node_b: int, cap: float, va: np.ndarray, vb_: np.ndarray) -> None:
            if cap <= 0.0:
                return
            charge = cap * (va - vb_)
            self._add_vec(Q, node_a, charge)
            self._add_vec(Q, node_b, -charge)
            self._add_mat(C, node_a, node_a, cap)
            self._add_mat(C, node_a, node_b, -cap)
            self._add_mat(C, node_b, node_a, -cap)
            self._add_mat(C, node_b, node_b, cap)

        add_linear_cap(g, s, p.cgs, vg, vs)
        add_linear_cap(g, d, p.cgd, vg, vd)
        add_linear_cap(d, b, p.cdb, vd, vb)
        add_linear_cap(s, b, p.csb, vs, vb)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        p = self.params
        caps = (p.cgs, p.cgd, p.cdb, p.csb)
        active = tuple(slot for slot, cap in zip(_CAP_SLOTS, caps) if cap > 0.0)
        spec = BatchSpec(
            key=("MOSFET", active, self.polarity),
            indices=self._node_idx,
            static_params=(p.vto, p.beta, p.lambda_),
            dynamic_params=tuple(cap for cap in caps if cap > 0.0),
            static_vec=(_D, _S),
            static_mat=((_D, _G), (_D, _D), (_D, _S), (_S, _G), (_S, _D), (_S, _S)),
            static_kernel=_mosfet_static_kernel(float(self.polarity)),
        )
        if active:
            vec, mat = linear_capacitance_slots(active)
            spec = replace(
                spec,
                dynamic_vec=vec,
                dynamic_mat=mat,
                dynamic_kernel=linear_capacitance_kernel(active),
                dynamic_mat_constant=True,
            )
        return spec


class NMOS(MOSFET):
    """Convenience subclass for n-channel devices."""

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str | None = None,
        params: MOSFETParams | None = None,
    ) -> None:
        super().__init__(name, drain, gate, source, bulk, params, polarity=1)


class PMOS(MOSFET):
    """Convenience subclass for p-channel devices.

    Remember that a PMOS threshold voltage is negative (e.g. ``vto=-0.7``).
    """

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        bulk: str | None = None,
        params: MOSFETParams | None = None,
    ) -> None:
        super().__init__(name, drain, gate, source, bulk, params, polarity=-1)
