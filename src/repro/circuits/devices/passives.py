"""Linear passive devices: resistors, conductances, capacitors, inductors.

All follow the stamping conventions documented in
:mod:`repro.circuits.devices.base`.
"""

from __future__ import annotations

import numpy as np

from ...utils.validation import check_positive
from .base import TwoTerminal

__all__ = ["Resistor", "Conductance", "Capacitor", "Inductor"]


class Resistor(TwoTerminal):
    """An ideal linear resistor.

    Contributes the current ``(v_pos - v_neg) / resistance`` leaving the
    positive node (entering the negative node) to ``f(x)``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, resistance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.resistance = check_positive("resistance", resistance)

    @property
    def conductance(self) -> float:
        """``1 / resistance``."""
        return 1.0 / self.resistance

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        g = self.conductance
        current = g * self.branch_voltage(X)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)


class Conductance(TwoTerminal):
    """A linear conductance (admittance) — handy for gmin stamps and tests."""

    def __init__(self, name: str, node_pos: str, node_neg: str, conductance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.conductance = check_positive("conductance", conductance)

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        g = self.conductance
        current = g * self.branch_voltage(X)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)


class Capacitor(TwoTerminal):
    """An ideal linear capacitor.

    Contributes the charge ``capacitance * (v_pos - v_neg)`` to ``q(x)``; the
    time derivative taken by the analyses turns it into the usual
    ``C dv/dt`` current.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, capacitance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.capacitance = check_positive("capacitance", capacitance)

    def has_dynamics(self) -> bool:
        return True

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        p, n = self._terminal_indices()
        c = self.capacitance
        charge = c * self.branch_voltage(X)
        self._add_vec(Q, p, charge)
        self._add_vec(Q, n, -charge)
        self._add_mat(C, p, p, c)
        self._add_mat(C, p, n, -c)
        self._add_mat(C, n, p, -c)
        self._add_mat(C, n, n, c)


class Inductor(TwoTerminal):
    """An ideal linear inductor with an explicit branch-current unknown.

    Unknowns: the branch current ``i`` flowing from the positive node through
    the inductor to the negative node.  Stamps:

    * node rows: ``+i`` leaves the positive node, ``-i`` the negative node,
    * branch row: ``d/dt (L * i) + (v_neg - v_pos) = 0``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, inductance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.inductance = check_positive("inductance", inductance)

    def n_branch_unknowns(self) -> int:
        return 1

    def branch_labels(self) -> tuple[str, ...]:
        return (f"i({self.name})",)

    def has_dynamics(self) -> bool:
        return True

    def _branch_index(self) -> int:
        self._require_bound()
        return self._branch_idx[0]

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        k = self._branch_index()
        current = X[:, k]
        # KCL contributions of the branch current.
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, k, 1.0)
        self._add_mat(G, n, k, -1.0)
        # Branch equation (static part): v_neg - v_pos.
        vneg_minus_vpos = -self.branch_voltage(X)
        self._add_vec(F, k, vneg_minus_vpos)
        self._add_mat(G, k, p, -1.0)
        self._add_mat(G, k, n, 1.0)

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        k = self._branch_index()
        current = X[:, k]
        self._add_vec(Q, k, self.inductance * current)
        self._add_mat(C, k, k, self.inductance)
