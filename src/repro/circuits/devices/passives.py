"""Linear passive devices: resistors, conductances, capacitors, inductors.

All follow the stamping conventions documented in
:mod:`repro.circuits.devices.base`.  Each class also declares a
:class:`~repro.circuits.devices.base.BatchSpec` so the batched evaluation
engine can evaluate all instances of the class in one vectorised kernel
call; the kernels repeat the loop-stamp arithmetic expression for
expression, which is what keeps the two backends bit-for-bit equal.
"""

from __future__ import annotations

import numpy as np

from ...utils.validation import check_positive
from .base import BatchSpec, TwoTerminal

__all__ = ["Resistor", "Conductance", "Capacitor", "Inductor"]


def _conductance_static_kernel(V, params, need_jacobian):
    """Shared resistor/conductance kernel: ``i = g * (v_pos - v_neg)``."""
    (g,) = params
    current = g * (V[0] - V[1])
    vec = (current, -current)
    if not need_jacobian:
        return vec, None
    return vec, (g, -g, -g, g)


def _capacitor_dynamic_kernel(V, params, need_jacobian):
    (c,) = params
    charge = c * (V[0] - V[1])
    vec = (charge, -charge)
    if not need_jacobian:
        return vec, None
    return vec, (c, -c, -c, c)


def _inductor_static_kernel(V, params, need_jacobian):
    current = V[2]
    vec = (current, -current, -(V[0] - V[1]))
    if not need_jacobian:
        return vec, None
    return vec, (1.0, -1.0, -1.0, 1.0)


def _inductor_dynamic_kernel(V, params, need_jacobian):
    (inductance,) = params
    vec = (inductance * V[2],)
    if not need_jacobian:
        return vec, None
    return vec, (inductance,)


def _two_terminal_conductance_spec(device, conductance: float) -> BatchSpec:
    p, n = device._terminal_indices()
    return BatchSpec(
        key=("linear_conductance",),
        indices=(p, n),
        static_params=(conductance,),
        static_vec=(0, 1),
        static_mat=((0, 0), (0, 1), (1, 0), (1, 1)),
        static_kernel=_conductance_static_kernel,
        static_mat_constant=True,
    )


class Resistor(TwoTerminal):
    """An ideal linear resistor.

    Contributes the current ``(v_pos - v_neg) / resistance`` leaving the
    positive node (entering the negative node) to ``f(x)``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, resistance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.resistance = check_positive("resistance", resistance)

    @property
    def conductance(self) -> float:
        """``1 / resistance``."""
        return 1.0 / self.resistance

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        g = self.conductance
        current = g * self.branch_voltage(X)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)

    def batch_spec(self) -> BatchSpec:
        # Resistors and Conductances share one kernel; the parameter handed
        # over is the same ``1 / resistance`` value the loop stamp computes.
        return _two_terminal_conductance_spec(self, self.conductance)


class Conductance(TwoTerminal):
    """A linear conductance (admittance) — handy for gmin stamps and tests."""

    def __init__(self, name: str, node_pos: str, node_neg: str, conductance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.conductance = check_positive("conductance", conductance)

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        g = self.conductance
        current = g * self.branch_voltage(X)
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, p, g)
        self._add_mat(G, p, n, -g)
        self._add_mat(G, n, p, -g)
        self._add_mat(G, n, n, g)

    def batch_spec(self) -> BatchSpec:
        return _two_terminal_conductance_spec(self, self.conductance)


class Capacitor(TwoTerminal):
    """An ideal linear capacitor.

    Contributes the charge ``capacitance * (v_pos - v_neg)`` to ``q(x)``; the
    time derivative taken by the analyses turns it into the usual
    ``C dv/dt`` current.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, capacitance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.capacitance = check_positive("capacitance", capacitance)

    def has_dynamics(self) -> bool:
        return True

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        p, n = self._terminal_indices()
        c = self.capacitance
        charge = c * self.branch_voltage(X)
        self._add_vec(Q, p, charge)
        self._add_vec(Q, n, -charge)
        self._add_mat(C, p, p, c)
        self._add_mat(C, p, n, -c)
        self._add_mat(C, n, p, -c)
        self._add_mat(C, n, n, c)

    def batch_spec(self) -> BatchSpec:
        p, n = self._terminal_indices()
        return BatchSpec(
            key=("Capacitor",),
            indices=(p, n),
            dynamic_params=(self.capacitance,),
            dynamic_vec=(0, 1),
            dynamic_mat=((0, 0), (0, 1), (1, 0), (1, 1)),
            dynamic_kernel=_capacitor_dynamic_kernel,
            dynamic_mat_constant=True,
        )


class Inductor(TwoTerminal):
    """An ideal linear inductor with an explicit branch-current unknown.

    Unknowns: the branch current ``i`` flowing from the positive node through
    the inductor to the negative node.  Stamps:

    * node rows: ``+i`` leaves the positive node, ``-i`` the negative node,
    * branch row: ``d/dt (L * i) + (v_neg - v_pos) = 0``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, inductance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        self.inductance = check_positive("inductance", inductance)

    def n_branch_unknowns(self) -> int:
        return 1

    def branch_labels(self) -> tuple[str, ...]:
        return (f"i({self.name})",)

    def has_dynamics(self) -> bool:
        return True

    def _branch_index(self) -> int:
        self._require_bound()
        return self._branch_idx[0]

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        k = self._branch_index()
        current = X[:, k]
        # KCL contributions of the branch current.
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, k, 1.0)
        self._add_mat(G, n, k, -1.0)
        # Branch equation (static part): v_neg - v_pos.
        vneg_minus_vpos = -self.branch_voltage(X)
        self._add_vec(F, k, vneg_minus_vpos)
        self._add_mat(G, k, p, -1.0)
        self._add_mat(G, k, n, 1.0)

    def stamp_dynamic(self, X: np.ndarray, Q: np.ndarray, C: np.ndarray) -> None:
        k = self._branch_index()
        current = X[:, k]
        self._add_vec(Q, k, self.inductance * current)
        self._add_mat(C, k, k, self.inductance)

    def batch_spec(self) -> BatchSpec:
        p, n = self._terminal_indices()
        k = self._branch_index()
        return BatchSpec(
            key=("Inductor",),
            indices=(p, n, k),
            dynamic_params=(self.inductance,),
            static_vec=(0, 1, 2),
            static_mat=((0, 2), (1, 2), (2, 0), (2, 1)),
            dynamic_vec=(2,),
            dynamic_mat=((2, 2),),
            static_kernel=_inductor_static_kernel,
            dynamic_kernel=_inductor_dynamic_kernel,
            static_mat_constant=True,
            dynamic_mat_constant=True,
        )
