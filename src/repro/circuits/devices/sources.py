"""Independent and controlled sources.

Independent sources carry a :class:`~repro.signals.stimuli.Stimulus`, which
provides both the single-time excitation ``b(t)`` and — through the sheared
time-scale map — the multi-time excitation ``b_hat(t1, t2)`` needed by the
MPDE core.

Controlled sources (VCCS, VCVS) are the linear coupling elements used by the
behavioural mixer models and by small-signal test fixtures.
"""

from __future__ import annotations

import numpy as np

from ...signals.stimuli import DCStimulus, Stimulus
from ...utils.exceptions import DeviceError
from ...utils.validation import check_finite
from .base import BatchSpec, Device, TwoTerminal

__all__ = [
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
]


def _voltage_source_static_kernel(V, params, need_jacobian):
    """Branch-current KCL rows plus the ``v_pos - v_neg`` branch relation."""
    current = V[2]
    vec = (current, -current, V[0] - V[1])
    if not need_jacobian:
        return vec, None
    return vec, (1.0, -1.0, 1.0, -1.0)


def _vccs_static_kernel(V, params, need_jacobian):
    (gm,) = params
    current = gm * (V[2] - V[3])
    vec = (current, -current)
    if not need_jacobian:
        return vec, None
    return vec, (gm, -gm, -gm, gm)


def _vcvs_static_kernel(V, params, need_jacobian):
    (gain,) = params
    current = V[4]
    v_out = V[0] - V[1]
    v_ctrl = V[2] - V[3]
    vec = (current, -current, v_out - gain * v_ctrl)
    if not need_jacobian:
        return vec, None
    return vec, (1.0, -1.0, 1.0, -1.0, -gain, gain)


def _coerce_stimulus(value: Stimulus | float | int) -> Stimulus:
    """Allow plain numbers wherever a stimulus is expected (DC sources)."""
    if isinstance(value, Stimulus):
        return value
    if isinstance(value, (int, float)):
        return DCStimulus(float(value))
    raise DeviceError(f"expected a Stimulus or a number, got {type(value).__name__}")


class VoltageSource(TwoTerminal):
    """Independent voltage source with an explicit branch-current unknown.

    The branch current ``i`` flows from the positive terminal through the
    source to the negative terminal (SPICE convention: a positive current
    means the source is *absorbing* power).  Stamps:

    * node rows: ``+i`` at the positive node, ``-i`` at the negative node,
    * branch row: ``v_pos - v_neg - V(t) = 0`` with ``-V(t)`` placed in
      ``b(t)``.
    """

    def __init__(
        self, name: str, node_pos: str, node_neg: str, stimulus: Stimulus | float
    ) -> None:
        super().__init__(name, node_pos, node_neg)
        self.stimulus = _coerce_stimulus(stimulus)

    def n_branch_unknowns(self) -> int:
        return 1

    def branch_labels(self) -> tuple[str, ...]:
        return (f"i({self.name})",)

    def _branch_index(self) -> int:
        self._require_bound()
        return self._branch_idx[0]

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        p, n = self._terminal_indices()
        k = self._branch_index()
        current = X[:, k]
        self._add_vec(F, p, current)
        self._add_vec(F, n, -current)
        self._add_mat(G, p, k, 1.0)
        self._add_mat(G, n, k, -1.0)
        self._add_vec(F, k, self.branch_voltage(X))
        self._add_mat(G, k, p, 1.0)
        self._add_mat(G, k, n, -1.0)

    def stamp_source(self, times: np.ndarray, B: np.ndarray) -> None:
        k = self._branch_index()
        values = np.asarray(self.stimulus.value(np.asarray(times, dtype=float)), dtype=float)
        self._add_vec(B, k, -values)

    def stamp_source_bivariate(self, t1, t2, scales, B: np.ndarray) -> None:
        k = self._branch_index()
        values = np.asarray(
            self.stimulus.bivariate_value(
                np.asarray(t1, dtype=float), np.asarray(t2, dtype=float), scales
            ),
            dtype=float,
        )
        self._add_vec(B, k, -values)

    def is_time_varying(self) -> bool:
        """Whether the source value changes with time."""
        return self.stimulus.is_time_varying()

    def batch_spec(self) -> BatchSpec:
        p, n = self._terminal_indices()
        return BatchSpec(
            key=("VoltageSource",),
            indices=(p, n, self._branch_index()),
            static_vec=(0, 1, 2),
            static_mat=((0, 2), (1, 2), (2, 0), (2, 1)),
            static_kernel=_voltage_source_static_kernel,
            static_mat_constant=True,
        )


class CurrentSource(TwoTerminal):
    """Independent current source.

    A positive current flows from the positive node *through the source* to
    the negative node (out of ``node_pos`` into ``node_neg``).  It
    contributes directly to ``b(t)``; no extra unknown is needed.
    """

    def __init__(
        self, name: str, node_pos: str, node_neg: str, stimulus: Stimulus | float
    ) -> None:
        super().__init__(name, node_pos, node_neg)
        self.stimulus = _coerce_stimulus(stimulus)

    def stamp_source(self, times: np.ndarray, B: np.ndarray) -> None:
        p, n = self._terminal_indices()
        values = np.asarray(self.stimulus.value(np.asarray(times, dtype=float)), dtype=float)
        self._add_vec(B, p, values)
        self._add_vec(B, n, -values)

    def stamp_source_bivariate(self, t1, t2, scales, B: np.ndarray) -> None:
        p, n = self._terminal_indices()
        values = np.asarray(
            self.stimulus.bivariate_value(
                np.asarray(t1, dtype=float), np.asarray(t2, dtype=float), scales
            ),
            dtype=float,
        )
        self._add_vec(B, p, values)
        self._add_vec(B, n, -values)

    def is_time_varying(self) -> bool:
        """Whether the source value changes with time."""
        return self.stimulus.is_time_varying()


class VCCS(Device):
    """Voltage-controlled current source: ``i = gm * (v_cp - v_cn)``.

    The current flows from the output positive node through the source to
    the output negative node.  Node order: (out_pos, out_neg, ctrl_pos,
    ctrl_neg).
    """

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        transconductance: float,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.transconductance = check_finite("transconductance", transconductance)

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        op, on, cp, cn = self._node_idx
        gm = self.transconductance
        v_ctrl = self._voltage(X, cp) - self._voltage(X, cn)
        current = gm * v_ctrl
        self._add_vec(F, op, current)
        self._add_vec(F, on, -current)
        self._add_mat(G, op, cp, gm)
        self._add_mat(G, op, cn, -gm)
        self._add_mat(G, on, cp, -gm)
        self._add_mat(G, on, cn, gm)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        return BatchSpec(
            key=("VCCS",),
            indices=self._node_idx,
            static_params=(self.transconductance,),
            static_vec=(0, 1),
            static_mat=((0, 2), (0, 3), (1, 2), (1, 3)),
            static_kernel=_vccs_static_kernel,
            static_mat_constant=True,
        )


class VCVS(Device):
    """Voltage-controlled voltage source: ``v_out = gain * (v_cp - v_cn)``.

    Needs a branch-current unknown like an independent voltage source.
    Node order: (out_pos, out_neg, ctrl_pos, ctrl_neg).
    """

    def __init__(
        self,
        name: str,
        out_pos: str,
        out_neg: str,
        ctrl_pos: str,
        ctrl_neg: str,
        gain: float,
    ) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gain = check_finite("gain", gain)

    def n_branch_unknowns(self) -> int:
        return 1

    def branch_labels(self) -> tuple[str, ...]:
        return (f"i({self.name})",)

    def stamp_static(self, X: np.ndarray, F: np.ndarray, G: np.ndarray) -> None:
        self._require_bound()
        op, on, cp, cn = self._node_idx
        k = self._branch_idx[0]
        current = X[:, k]
        self._add_vec(F, op, current)
        self._add_vec(F, on, -current)
        self._add_mat(G, op, k, 1.0)
        self._add_mat(G, on, k, -1.0)
        # Branch equation: v_out_pos - v_out_neg - gain * (v_cp - v_cn) = 0.
        v_out = self._voltage(X, op) - self._voltage(X, on)
        v_ctrl = self._voltage(X, cp) - self._voltage(X, cn)
        self._add_vec(F, k, v_out - self.gain * v_ctrl)
        self._add_mat(G, k, op, 1.0)
        self._add_mat(G, k, on, -1.0)
        self._add_mat(G, k, cp, -self.gain)
        self._add_mat(G, k, cn, self.gain)

    def batch_spec(self) -> BatchSpec:
        self._require_bound()
        return BatchSpec(
            key=("VCVS",),
            indices=self._node_idx + (self._branch_idx[0],),
            static_params=(self.gain,),
            static_vec=(0, 1, 4),
            static_mat=((0, 4), (1, 4), (4, 0), (4, 1), (4, 2), (4, 3)),
            static_kernel=_vcvs_static_kernel,
            static_mat_constant=True,
        )
