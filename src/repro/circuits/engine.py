"""Batched device-class evaluation engine.

The per-device stamp loop in :class:`~repro.circuits.mna.MNASystem` costs one
Python-dispatched ``stamp_static`` / ``stamp_dynamic`` call per device per
evaluation — and once the assembly pipeline is compiled (PR 1) and the linear
solves are preconditioned (PR 2), that interpreter dispatch plus the
per-device slice arithmetic dominates the whole residual/Jacobian evaluation
for realistic netlists.  This module removes it with a classic
*gather / compute / scatter* design, compiled once per circuit:

gather
    Devices are grouped by class (more precisely by their
    :class:`~repro.circuits.devices.base.BatchSpec` key, which also encodes
    structural parameter flags).  Each group precomputes per-terminal index
    arrays; at evaluation time one fancy-index row read of the transposed
    padded state yields a C-contiguous ``(n_group, P)`` block per terminal.

compute
    The group's elementwise kernel — contributed by the device class itself
    in ``devices/*.py`` — evaluates all stamp values over the full
    ``(n_group, P)`` block in a handful of NumPy ufunc calls.  The kernels
    mirror the loop stamps expression for expression (and may skip work the
    loop path discards, e.g. cut-off MOSFET branches, via region masking —
    elementwise ufuncs make the surviving values identical), so the numbers
    they produce are bit-for-bit equal to the per-device path.

scatter
    Everything is laid out *transposed* (one contiguous buffer row per
    contribution target), so writing a kernel slot is a plain row-block
    assignment.  Accumulation order is the subtle part: duplicate
    contributions must sum in device insertion order to reproduce the loop
    path's ``+=`` sequence bit for bit.  :class:`_AccumLayout` achieves that
    without any per-evaluation ``bincount``: the first contribution to every
    residual row / Jacobian slot writes *directly* into the final
    (transposed) output buffer, later duplicates go to private side rows,
    and a short ``+=`` pass folds them back in raw order.  Jacobian rows
    follow the compiled stamp patterns (the same contribution order
    :class:`~repro.circuits.devices.base.PatternValueFiller` sees on the
    loop path); linear devices declare their Jacobian values
    ``x``-independent, and those rows are captured once into a per-``P``
    template the evaluation starts from, so only nonlinear Jacobian values
    are recomputed per call.

Devices without a :meth:`batch_spec` fall back to running their loop stamps
into the very same buffers, so arbitrary (user-defined) devices keep working
inside the batched backend; every spec is validated against the device's
recorded stamp patterns at compile time, so a kernel that disagrees with the
loop stamps fails loudly.

The flat gather/compute/scatter structure is deliberately backend-agnostic,
and the parallel execution layer (PR 5) exploits exactly that: under
``EvaluationOptions(kernel_backend="sharded")`` a pool of forked workers
(:class:`~repro.parallel.pool.ShardedKernelPool`) — each holding an
inherited copy of this engine — runs :meth:`BatchedEvaluationEngine.evaluate`
over contiguous shards of the ``P`` axis and scatters the results through
shared memory.  Every operation here is elementwise along ``P`` (the gather
reads rows per point, the kernels are ufuncs over the point axis, the
accumulation folds per point), which is the structural fact that makes the
sharded path bit-for-bit equal to the serial one.
"""

from __future__ import annotations

import numpy as np

from ..utils.exceptions import CircuitError, DeviceError
from .devices.base import (
    BatchSpec,
    Device,
    NullStamps,
    PatternRecorder,
    VectorRecorder,
)

__all__ = ["BatchedEvaluationEngine"]

_NULL_STAMPS = NullStamps()


class _AccumLayout:
    """Primary/secondary buffer layout for order-preserving accumulation.

    Each raw contribution ``k`` has a target ``targets[k]`` (a residual row,
    or a deduplicated Jacobian slot).  The *first* contribution to a target
    writes directly into output row ``targets[k]``; every later duplicate
    gets a private side row above ``n_out``.  :meth:`finalize` folds the
    side rows back with ``+=`` in raw order, reproducing the loop path's
    accumulation order exactly — so no per-evaluation ``bincount`` (and no
    staging copy of the non-duplicated majority) is ever needed.
    """

    __slots__ = ("row_map", "secondary_targets", "height", "n_out", "untouched")

    def __init__(self, targets, n_out: int) -> None:
        targets = np.asarray(targets, dtype=np.int64)
        self.n_out = int(n_out)
        self.row_map = np.empty(targets.size, dtype=np.intp)
        seen: set[int] = set()
        secondary: list[int] = []
        height = self.n_out
        for k, target in enumerate(targets.tolist()):
            if target in seen:
                self.row_map[k] = height
                secondary.append(target)
                height += 1
            else:
                seen.add(target)
                self.row_map[k] = target
        self.secondary_targets = np.asarray(secondary, dtype=np.intp)
        self.height = height
        self.untouched = np.setdiff1d(np.arange(self.n_out), targets)

    def finalize(self, buffer: np.ndarray) -> np.ndarray:
        """Fold side rows in raw order; return the contiguous ``(P, n_out)`` result.

        The fold is a short Python loop on purpose: duplicates are rare (a
        handful per circuit), and sequential row ``+=`` both beats
        ``ufunc.at`` by an order of magnitude here and guarantees the loop
        path's per-target accumulation order.
        """
        for source, target in enumerate(self.secondary_targets.tolist(), start=self.n_out):
            buffer[target] += buffer[source]
        # .copy() rather than ascontiguousarray: the result must never alias
        # the reused scratch buffer (for P = 1 the transposed view is already
        # flagged contiguous, and callers keep results across evaluations —
        # e.g. the integration rules' charge history).
        return buffer[: self.n_out].T.copy()


class _TransposedScatter:
    """Order-preserving ``bincount`` reduction of raw contributions to ``(P, n)``.

    ``raw_rows`` lists the target row of every raw contribution in device
    insertion order; ``bincount``'s per-bin accumulation visits entries in
    input order — the order the per-device loop executes its ``+=`` updates.
    Used by the (cold) excitation path; the hot residual/Jacobian path uses
    :class:`_AccumLayout` instead.
    """

    def __init__(self, raw_rows: np.ndarray, n: int) -> None:
        self.raw_rows = np.asarray(raw_rows, dtype=np.int64)
        self.n = int(n)
        self._index_cache: dict[int, np.ndarray] = {}

    @property
    def nnz_raw(self) -> int:
        return int(self.raw_rows.size)

    def scatter(self, raw_t: np.ndarray) -> np.ndarray:
        n_points = raw_t.shape[1]
        if self.nnz_raw == 0:
            return np.zeros((n_points, self.n))
        index = self._index_cache.get(n_points)
        if index is None:
            offsets = np.arange(n_points, dtype=np.int64) * self.n
            index = (self.raw_rows[:, None] + offsets[None, :]).ravel()
            if len(self._index_cache) > 4:
                self._index_cache.clear()
            self._index_cache[n_points] = index
        summed = np.bincount(
            index, weights=raw_t.ravel(), minlength=n_points * self.n
        )
        return summed.reshape(n_points, self.n)


class _VectorValueFiller:
    """Residual accumulator writing loop-stamp values into mapped buffer rows.

    Used by the fallback path for devices without a batch spec and by the
    batched excitation evaluation; the expected row sequence is verified so
    a stamp whose structure silently depended on ``x`` (or ``t``) fails
    loudly.
    """

    __slots__ = ("buffer", "_rows", "_positions", "_cursor")

    def __init__(self, buffer: np.ndarray, rows: np.ndarray, positions: np.ndarray) -> None:
        self.buffer = buffer
        self._rows = rows
        self._positions = positions
        self._cursor = 0

    def add(self, index: int, value) -> None:
        k = self._cursor
        if k >= self._rows.size or self._rows[k] != index:
            raise DeviceError(
                "device residual stamp structure changed between engine compilation "
                f"and evaluation (got row {index} at position {k})"
            )
        self.buffer[self._positions[k]] = value
        self._cursor += 1

    @property
    def cursor(self) -> int:
        return self._cursor


class _PatternValueFiller:
    """Jacobian accumulator writing loop-stamp values into mapped buffer rows.

    The batched-layout analogue of
    :class:`~repro.circuits.devices.base.PatternValueFiller`.
    """

    __slots__ = ("buffer", "_rows", "_cols", "_positions", "_cursor")

    def __init__(
        self, buffer: np.ndarray, rows: np.ndarray, cols: np.ndarray, positions: np.ndarray
    ) -> None:
        self.buffer = buffer
        self._rows = rows
        self._cols = cols
        self._positions = positions
        self._cursor = 0

    def add(self, row: int, col: int, value) -> None:
        k = self._cursor
        if k >= self._rows.size or self._rows[k] != row or self._cols[k] != col:
            raise DeviceError(
                "device stamp structure changed between engine compilation and "
                f"evaluation (got entry ({row}, {col}) at position {k})"
            )
        self.buffer[self._positions[k]] = value
        self._cursor += 1

    @property
    def cursor(self) -> int:
        return self._cursor


def _assign(buffer: np.ndarray, rows: np.ndarray, sel: np.ndarray | None, value) -> None:
    """Write one slot's kernel values into their buffer rows.

    ``value`` may be a scalar (member- and point-independent stamps like an
    inductor's ±1 entries), an ``(n_group, 1)`` array (point-independent) or
    a full ``(n_group, P)`` array; ``sel`` restricts to the members whose
    slot survived ground elimination (``None`` when all did).
    """
    if rows.size == 0:
        return
    if isinstance(value, np.ndarray) and sel is not None:
        buffer[rows] = value[sel]
    else:
        buffer[rows] = value


class _GroupPart:
    """One kernel invocation: a device group's static *or* dynamic stamps."""

    __slots__ = ("kernel", "gather", "params", "vec_slots", "mat_slots", "mat_constant")

    def __init__(self, kernel, gather, params, vec_slots, mat_slots, mat_constant) -> None:
        self.kernel = kernel
        #: per-terminal (n_group,) index arrays into the padded state rows
        self.gather = [np.ascontiguousarray(rows) for rows in gather]
        self.params = params  # tuple of (n_group, 1) parameter arrays
        self.vec_slots = vec_slots  # [(rows, sel)] aligned with kernel vec output
        self.mat_slots = mat_slots  # [(rows, sel)] aligned with kernel mat output
        self.mat_constant = mat_constant

    def constant_mat_fills(self, probe_t: np.ndarray):
        """(rows, sel, value) template fills of an ``x``-independent Jacobian."""
        V = [probe_t[idx] for idx in self.gather]
        _vec, mat_values = self.kernel(V, self.params, True)
        return [
            (rows, sel, value)
            for (rows, sel), value in zip(self.mat_slots, mat_values)
        ]

    def run(self, X, padded_t, vec_buf, mat_buf) -> None:
        # One fancy row-gather per terminal keeps every (n_group, P) block
        # C-contiguous, which is what lets the kernel ufuncs hit their SIMD
        # fast paths.
        V = [padded_t[idx] for idx in self.gather]
        need_mat = mat_buf is not None and not self.mat_constant
        vec_values, mat_values = self.kernel(V, self.params, need_mat)
        for (rows, sel), value in zip(self.vec_slots, vec_values):
            _assign(vec_buf, rows, sel, value)
        if need_mat:
            for (rows, sel), value in zip(self.mat_slots, mat_values):
                _assign(mat_buf, rows, sel, value)


class _FallbackPart:
    """Loop-stamp execution of one spec-less device into the group buffers."""

    __slots__ = ("device", "static", "vec_rows", "vec_positions", "mat_rows", "mat_cols", "mat_positions")

    def __init__(self, device, static, vec_rows, vec_positions, mat_rows, mat_cols, mat_positions):
        self.device = device
        self.static = static
        self.vec_rows = vec_rows
        self.vec_positions = vec_positions
        self.mat_rows = mat_rows
        self.mat_cols = mat_cols
        self.mat_positions = mat_positions

    def run(self, X, padded_t, vec_buf, mat_buf) -> None:
        vec_acc = _VectorValueFiller(vec_buf, self.vec_rows, self.vec_positions)
        if mat_buf is None:
            mat_acc: object = _NULL_STAMPS
        else:
            mat_acc = _PatternValueFiller(
                mat_buf, self.mat_rows, self.mat_cols, self.mat_positions
            )
        if self.static:
            self.device.stamp_static(X, vec_acc, mat_acc)
        else:
            self.device.stamp_dynamic(X, vec_acc, mat_acc)
        if vec_acc.cursor != self.vec_rows.size or (
            mat_buf is not None and mat_acc.cursor != self.mat_rows.size
        ):
            raise DeviceError(
                f"device {self.device.name!r} made fewer stamp contributions than "
                "the engine compiled; stamp structure must not depend on x"
            )


class _SourcePattern:
    """Lazily compiled batched excitation evaluation (``b`` / ``b_hat``).

    The row pattern of the source stamps is structural but can only be
    recorded with representative time arguments, so compilation happens on
    the first call; later calls reuse the scatter and per-device buffer
    rows.  Per-device stimulus evaluation necessarily stays a Python loop
    (stimuli are heterogeneous objects) — the engine batches the scatter.
    """

    __slots__ = ("_devices", "_n", "_entries", "_scatter")

    def __init__(self, devices, n) -> None:
        self._devices = devices
        self._n = n
        self._entries = None
        self._scatter = None

    def _compile(self, stamp, args) -> None:
        entries = []
        rows_all: list[int] = []
        offset = 0
        for device in self._devices:
            recorder = VectorRecorder()
            stamp(device, args, recorder)
            count = len(recorder.rows)
            if count:
                rows = np.asarray(recorder.rows, dtype=np.int64)
                positions = np.arange(offset, offset + count, dtype=np.intp)
                entries.append((device, rows, positions))
                rows_all.extend(recorder.rows)
                offset += count
        self._entries = entries
        self._scatter = _TransposedScatter(np.asarray(rows_all, dtype=np.int64), self._n)

    def evaluate(self, stamp, args, n_points: int) -> np.ndarray:
        if self._entries is None:
            self._compile(stamp, args)
        raw = np.empty((self._scatter.nnz_raw, n_points))
        for device, rows, positions in self._entries:
            filler = _VectorValueFiller(raw, rows, positions)
            stamp(device, args, filler)
            if filler.cursor != rows.size:
                raise DeviceError(
                    f"device {device.name!r} made fewer source contributions than recorded"
                )
        return self._scatter.scatter(raw)


def _kept_vec_rows(indices, slots) -> list[int]:
    return [indices[s] for s in slots if indices[s] >= 0]


def _kept_mat_entries(indices, slots) -> list[tuple[int, int]]:
    return [
        (indices[r], indices[c])
        for r, c in slots
        if indices[r] >= 0 and indices[c] >= 0
    ]


def _slot_assignments(idx_matrix, slots, offsets, counts, row_map, *, matrix):
    """Buffer row maps per slot, honouring ground elimination.

    ``idx_matrix`` is the group's ``(n_group, T)`` terminal-index array (with
    ``-1`` for ground), ``offsets``/``counts`` each member's raw-segment
    start and length, ``row_map`` the raw-index -> buffer-row mapping of the
    accumulation layout.  Walking the slots in declaration order advances a
    per-member cursor exactly as the loop stamps advance through the raw
    sequence, which is what aligns kernel output with the compiled patterns.
    """
    cursors = offsets.astype(np.int64).copy()
    assignments = []
    for slot in slots:
        if matrix:
            r, c = slot
            keep = (idx_matrix[:, r] >= 0) & (idx_matrix[:, c] >= 0)
        else:
            keep = idx_matrix[:, slot] >= 0
        raw_positions = cursors[keep]
        sel = None if bool(keep.all()) else np.flatnonzero(keep)
        assignments.append((row_map[raw_positions], sel))
        cursors[keep] += 1
    if not np.array_equal(cursors, offsets + counts):
        raise DeviceError(
            "batch spec slots do not cover the device's recorded stamp pattern"
        )
    return assignments


class BatchedEvaluationEngine:
    """Compiled gather/compute/scatter evaluation of a circuit's equations.

    Built lazily by :class:`~repro.circuits.mna.MNASystem` (once per
    compiled circuit); see the module docstring for the design.  Instances
    reuse internal scratch buffers between evaluations and are therefore not
    re-entrant — consistent with the rest of the evaluation pipeline.
    """

    def __init__(self, system) -> None:
        self._system = system
        n = system.n_unknowns
        devices = system.devices

        # -- per-device stamp recording (once) ----------------------------
        probe = np.full((1, n), 0.1)
        records = []
        for device in devices:
            f_rec, g_rec = VectorRecorder(), PatternRecorder()
            device.stamp_static(probe, f_rec, g_rec)
            q_rec, c_rec = VectorRecorder(), PatternRecorder()
            device.stamp_dynamic(probe, q_rec, c_rec)
            records.append((f_rec, g_rec, q_rec, c_rec))

        # The concatenated per-device Jacobian patterns must reproduce the
        # system's compiled patterns — the engine's buffer layouts are built
        # on the pattern's raw contribution order.
        for rec_idx, pattern, what in (
            (1, system.static_pattern, "static"),
            (3, system.dynamic_pattern, "dynamic"),
        ):
            rows = [r for rec in records for r in rec[rec_idx].rows]
            cols = [c for rec in records for c in rec[rec_idx].cols]
            if not (
                np.array_equal(rows, pattern.raw_rows)
                and np.array_equal(cols, pattern.raw_cols)
            ):
                raise CircuitError(
                    f"internal error: engine-recorded {what} stamp pattern disagrees "
                    "with the system's compiled pattern"
                )

        self._f_layout = _AccumLayout(
            [r for rec in records for r in rec[0].rows], n
        )
        self._q_layout = _AccumLayout(
            [r for rec in records for r in rec[2].rows], n
        )
        self._g_layout = _AccumLayout(system.static_pattern.slot, system.static_pattern.nnz)
        self._c_layout = _AccumLayout(system.dynamic_pattern.slot, system.dynamic_pattern.nnz)

        # -- per-device raw offsets ---------------------------------------
        def _offsets(counts):
            counts = np.asarray(counts, dtype=np.int64)
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            return starts, counts

        f_off, f_cnt = _offsets([len(rec[0].rows) for rec in records])
        g_off, g_cnt = _offsets([len(rec[1].rows) for rec in records])
        q_off, q_cnt = _offsets([len(rec[2].rows) for rec in records])
        c_off, c_cnt = _offsets([len(rec[3].rows) for rec in records])

        # -- grouping -----------------------------------------------------
        groups: dict[tuple, list[int]] = {}
        fallback: list[int] = []
        specs: list[BatchSpec | None] = []
        for i, device in enumerate(devices):
            spec = device.batch_spec()
            specs.append(spec)
            if spec is None:
                # Inert devices (no stamps at all) need no fallback slot.
                if f_cnt[i] or g_cnt[i] or q_cnt[i] or c_cnt[i]:
                    fallback.append(i)
                continue
            self._validate_spec(devices[i], spec, records[i])
            groups.setdefault(spec.key, []).append(i)

        self._static_parts: list[_GroupPart | _FallbackPart] = []
        self._dynamic_parts: list[_GroupPart | _FallbackPart] = []
        for key, members in groups.items():
            first = specs[members[0]]
            idx_matrix = np.asarray([specs[i].indices for i in members], dtype=np.int64)
            gather = np.where(idx_matrix < 0, n, idx_matrix).T.copy()  # (T, n_group)

            def _stack_params(values_of):
                return tuple(
                    np.asarray([values_of(specs[i])[j] for i in members])[:, None]
                    for j in range(len(values_of(first)))
                )

            if first.static_kernel is not None:
                self._static_parts.append(
                    _GroupPart(
                        first.static_kernel,
                        gather,
                        _stack_params(lambda s: s.static_params),
                        _slot_assignments(
                            idx_matrix, first.static_vec, f_off[members], f_cnt[members],
                            self._f_layout.row_map, matrix=False,
                        ),
                        _slot_assignments(
                            idx_matrix, first.static_mat, g_off[members], g_cnt[members],
                            self._g_layout.row_map, matrix=True,
                        ),
                        first.static_mat_constant,
                    )
                )
            if first.dynamic_kernel is not None:
                self._dynamic_parts.append(
                    _GroupPart(
                        first.dynamic_kernel,
                        gather,
                        _stack_params(lambda s: s.dynamic_params),
                        _slot_assignments(
                            idx_matrix, first.dynamic_vec, q_off[members], q_cnt[members],
                            self._q_layout.row_map, matrix=False,
                        ),
                        _slot_assignments(
                            idx_matrix, first.dynamic_mat, c_off[members], c_cnt[members],
                            self._c_layout.row_map, matrix=True,
                        ),
                        first.dynamic_mat_constant,
                    )
                )

        for i in fallback:
            device = devices[i]
            if f_cnt[i] or g_cnt[i]:
                self._static_parts.append(
                    _FallbackPart(
                        device,
                        True,
                        np.asarray(records[i][0].rows, dtype=np.int64),
                        self._f_layout.row_map[f_off[i] : f_off[i] + f_cnt[i]],
                        system.static_pattern.raw_rows[g_off[i] : g_off[i] + g_cnt[i]],
                        system.static_pattern.raw_cols[g_off[i] : g_off[i] + g_cnt[i]],
                        self._g_layout.row_map[g_off[i] : g_off[i] + g_cnt[i]],
                    )
                )
            if q_cnt[i] or c_cnt[i]:
                self._dynamic_parts.append(
                    _FallbackPart(
                        device,
                        False,
                        np.asarray(records[i][2].rows, dtype=np.int64),
                        self._q_layout.row_map[q_off[i] : q_off[i] + q_cnt[i]],
                        system.dynamic_pattern.raw_rows[c_off[i] : c_off[i] + c_cnt[i]],
                        system.dynamic_pattern.raw_cols[c_off[i] : c_off[i] + c_cnt[i]],
                        self._c_layout.row_map[c_off[i] : c_off[i] + c_cnt[i]],
                    )
                )

        # -- constant-Jacobian templates ----------------------------------
        # Linear devices' Jacobian values never change; capture them once
        # (per part, shapes are point-independent) and build, lazily per
        # point count, template buffers the evaluation copies instead of
        # recomputing.
        probe_t = np.full((n + 1, 1), 0.1)
        probe_t[n] = 0.0  # virtual ground row
        self._static_fills = [
            fill
            for part in self._static_parts
            if isinstance(part, _GroupPart) and part.mat_constant
            for fill in part.constant_mat_fills(probe_t)
        ]
        self._dynamic_fills = [
            fill
            for part in self._dynamic_parts
            if isinstance(part, _GroupPart) and part.mat_constant
            for fill in part.constant_mat_fills(probe_t)
        ]
        self._template_cache: dict[tuple[str, int], np.ndarray] = {}
        self._scratch_cache: dict[tuple[str, int], np.ndarray] = {}

        # A pattern whose every contribution is constant (e.g. the dynamic
        # pattern of a circuit whose charge storage is all linear capacitors)
        # needs no per-evaluation Jacobian work at all: its finalized data
        # array is cached per point count and returned read-only.
        def _all_constant(parts):
            return all(
                isinstance(part, _GroupPart)
                and (part.mat_constant or not any(r.size for r, _ in part.mat_slots))
                for part in parts
            )

        self._static_mat_all_constant = _all_constant(self._static_parts)
        self._dynamic_mat_all_constant = _all_constant(self._dynamic_parts)

        self._source_pattern = _SourcePattern(devices, n)
        self._bivariate_pattern = _SourcePattern(devices, n)

    # -- compile-time validation ------------------------------------------
    @staticmethod
    def _validate_spec(device: Device, spec: BatchSpec, record) -> None:
        """Check a spec's slot declarations against the recorded loop stamps."""
        f_rec, g_rec, q_rec, c_rec = record
        checks = (
            (spec.static_kernel, spec.static_vec, spec.static_mat, f_rec, g_rec, "static"),
            (spec.dynamic_kernel, spec.dynamic_vec, spec.dynamic_mat, q_rec, c_rec, "dynamic"),
        )
        for kernel, vec_slots, mat_slots, vec_rec, mat_rec, what in checks:
            if kernel is None:
                if vec_rec.rows or mat_rec.rows:
                    raise DeviceError(
                        f"device {device.name!r} has {what} stamps but its batch spec "
                        f"declares no {what} kernel"
                    )
                continue
            expected_vec = _kept_vec_rows(spec.indices, vec_slots)
            expected_mat = _kept_mat_entries(spec.indices, mat_slots)
            if expected_vec != vec_rec.rows or expected_mat != list(
                zip(mat_rec.rows, mat_rec.cols)
            ):
                raise DeviceError(
                    f"batch spec of device {device.name!r} disagrees with its recorded "
                    f"{what} stamp pattern"
                )

    # -- buffer management -------------------------------------------------
    def _scratch(self, what: str, shape: tuple[int, int]) -> np.ndarray:
        """A reused scratch buffer of the given shape (contents arbitrary)."""
        key = (what, shape[1])
        buffer = self._scratch_cache.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape)
            if len(self._scratch_cache) > 16:
                self._scratch_cache.clear()
            self._scratch_cache[key] = buffer
        return buffer

    def _vec_buffer(self, what: str, layout: _AccumLayout, n_points: int) -> np.ndarray:
        """A residual accumulation buffer with never-written rows zeroed.

        Touched rows are overwritten by the parts on every evaluation, so
        only the untouched rows need (one-time) zeroing per scratch buffer.
        """
        key = (what, n_points)
        buffer = self._scratch_cache.get(key)
        if buffer is None or buffer.shape[0] != layout.height:
            buffer = np.empty((layout.height, n_points))
            buffer[layout.untouched] = 0.0
            if len(self._scratch_cache) > 16:
                self._scratch_cache.clear()
            self._scratch_cache[key] = buffer
        return buffer

    def _mat_buffer(
        self, what: str, layout: _AccumLayout, n_points: int, fills
    ) -> np.ndarray:
        """A Jacobian accumulation buffer with constant rows pre-filled.

        The template (constant rows written, variable rows left arbitrary —
        every variable row is overwritten by exactly one part per
        evaluation) is built once per point count; per call its rows are
        copied into a reused scratch buffer.
        """
        key = (what, n_points)
        template = self._template_cache.get(key)
        if template is None:
            template = np.zeros((layout.height, n_points))
            for rows, sel, value in fills:
                _assign(template, rows, sel, value)
            if len(self._template_cache) > 8:
                self._template_cache.clear()
            self._template_cache[key] = template
        buffer = self._scratch(what + "_buf", (layout.height, n_points))
        np.copyto(buffer, template)
        return buffer

    def _constant_mat_data(self, what: str, layout: _AccumLayout, n_points: int, fills) -> np.ndarray:
        """Finalized Jacobian data of an all-constant pattern (cached, read-only).

        The returned array is shared between evaluations (its values can
        never change); it is marked non-writeable so accidental mutation by
        a caller fails loudly instead of corrupting later evaluations.
        """
        key = (what + "_const", n_points)
        data = self._template_cache.get(key)
        if data is None:
            buffer = np.zeros((layout.height, n_points))
            for rows, sel, value in fills:
                _assign(buffer, rows, sel, value)
            data = layout.finalize(buffer)
            data.setflags(write=False)
            if len(self._template_cache) > 8:
                self._template_cache.clear()
            self._template_cache[key] = data
        return data

    # -- evaluation --------------------------------------------------------
    def evaluate(
        self,
        X: np.ndarray,
        *,
        need_static_jacobian: bool = True,
        need_dynamic_jacobian: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Batched ``q``/``f`` and (optionally) deduplicated Jacobian data.

        Returns ``(Q, F, c_data, g_data)`` with ``Q``/``F`` of shape
        ``(P, n)`` and the data arrays aligned with the system's compiled
        stamp patterns (``None`` when not requested — in which case no
        Jacobian buffer of any kind is allocated or written).
        """
        n_points, n = X.shape
        padded_t = self._scratch("padded", (n + 1, n_points))
        padded_t[:n] = X.T
        padded_t[n] = 0.0  # virtual ground row

        f_buf = self._vec_buffer("f", self._f_layout, n_points)
        q_buf = self._vec_buffer("q", self._q_layout, n_points)
        g_buf = c_buf = None
        g_data = c_data = None
        if need_static_jacobian:
            if self._static_mat_all_constant:
                g_data = self._constant_mat_data(
                    "static", self._g_layout, n_points, self._static_fills
                )
            else:
                g_buf = self._mat_buffer(
                    "static", self._g_layout, n_points, self._static_fills
                )
        if need_dynamic_jacobian:
            if self._dynamic_mat_all_constant:
                c_data = self._constant_mat_data(
                    "dynamic", self._c_layout, n_points, self._dynamic_fills
                )
            else:
                c_buf = self._mat_buffer(
                    "dynamic", self._c_layout, n_points, self._dynamic_fills
                )

        for part in self._static_parts:
            part.run(X, padded_t, f_buf, g_buf)
        for part in self._dynamic_parts:
            part.run(X, padded_t, q_buf, c_buf)

        F = self._f_layout.finalize(f_buf)
        Q = self._q_layout.finalize(q_buf)
        if g_buf is not None:
            g_data = self._g_layout.finalize(g_buf)
        if c_buf is not None:
            c_data = self._c_layout.finalize(c_buf)
        return Q, F, c_data, g_data

    # -- excitation --------------------------------------------------------
    def source(self, times: np.ndarray) -> np.ndarray:
        """Batched ``b(t)``: per-device stimulus values, one vectorised scatter."""

        def stamp(device, args, accumulator):
            device.stamp_source(args[0], accumulator)

        return self._source_pattern.evaluate(stamp, (times,), times.shape[0])

    def source_bivariate(self, t1: np.ndarray, t2: np.ndarray, scales) -> np.ndarray:
        """Batched multi-time excitation ``b_hat(t1, t2)``."""

        def stamp(device, args, accumulator):
            device.stamp_source_bivariate(args[0], args[1], args[2], accumulator)

        return self._bivariate_pattern.evaluate(stamp, (t1, t2, scales), t1.shape[0])
