"""Modified nodal analysis (MNA) system.

``MNASystem`` is the compiled form of a :class:`~repro.circuits.netlist.Circuit`:
it evaluates the charge-oriented DAE

    d/dt q(x(t)) + f(x(t)) + b(t) = 0

and its Jacobians for any vector of unknowns ``x`` (node voltages followed by
branch currents).  Every analysis in the library — DC, transient, shooting,
harmonic balance and the multi-time MPDE core — consumes this one object,
which is what makes the performance comparisons between methods
apples-to-apples.

Evaluation is vectorised over *evaluation points*: ``evaluate`` accepts an
``(P, n)`` array of unknown vectors and returns stacked ``q``/``f`` values and
Jacobians for all ``P`` points in one call.  The MPDE discretisation uses
this with ``P = n_fast * n_slow`` (the paper's 40 x 30 grid gives
``P = 1200``), the time-stepping analyses with ``P = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..utils.exceptions import CircuitError, NodeError
from .devices.base import Device

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .netlist import Circuit

__all__ = ["MNAEvaluation", "MNASystem"]


@dataclass(frozen=True)
class MNAEvaluation:
    """Stacked evaluation of the circuit equations at ``P`` points.

    Attributes
    ----------
    q:
        Charges/fluxes, shape ``(P, n)``.
    f:
        Conductive currents, shape ``(P, n)``.
    capacitance:
        ``dq/dx`` Jacobians, shape ``(P, n, n)``.
    conductance:
        ``df/dx`` Jacobians, shape ``(P, n, n)``.
    """

    q: np.ndarray
    f: np.ndarray
    capacitance: np.ndarray
    conductance: np.ndarray


class MNASystem:
    """Compiled circuit equations (see module docstring).

    Instances are created by :meth:`repro.circuits.netlist.Circuit.compile`;
    they should not be constructed directly.
    """

    def __init__(
        self,
        circuit: "Circuit",
        node_index: Mapping[str, int],
        unknown_names: Sequence[str],
        n_unknowns: int,
    ) -> None:
        self.circuit = circuit
        self._node_index = dict(node_index)
        self.unknown_names = tuple(unknown_names)
        self.n_unknowns = int(n_unknowns)
        if len(self.unknown_names) != self.n_unknowns:
            raise CircuitError(
                "internal error: unknown_names length does not match n_unknowns"
            )
        self._devices: tuple[Device, ...] = circuit.devices
        self._branch_index = self._build_branch_index()

    def _build_branch_index(self) -> dict[str, int]:
        index: dict[str, int] = {}
        for device in self._devices:
            for label, idx in zip(device.branch_labels(), device._branch_idx):
                index[label] = idx
                index.setdefault(device.name, idx)
        return index

    # -- bookkeeping -------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of non-ground node-voltage unknowns."""
        return len(self._node_index)

    @property
    def devices(self) -> tuple[Device, ...]:
        """Devices of the underlying circuit."""
        return self._devices

    def node_index(self, node: str) -> int:
        """Index of a node voltage in the unknown vector (-1 for ground)."""
        if self.circuit.is_ground(node):
            return -1
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise NodeError(f"unknown node {node!r} in circuit {self.circuit.name!r}") from exc

    def branch_index(self, device_name: str) -> int:
        """Index of the (first) branch-current unknown of ``device_name``."""
        try:
            return self._branch_index[device_name]
        except KeyError as exc:
            raise CircuitError(
                f"device {device_name!r} has no branch-current unknown"
            ) from exc

    def voltage(self, x: np.ndarray, node: str) -> np.ndarray | float:
        """Extract the voltage of ``node`` from a solution vector or array.

        Works on a single unknown vector (shape ``(n,)``), a stack of vectors
        (``(P, n)``) or a multi-time grid array (``(n1, n2, n)``); ground
        returns zeros of the matching shape.
        """
        idx = self.node_index(node)
        x = np.asarray(x, dtype=float)
        if idx < 0:
            return np.zeros(x.shape[:-1]) if x.ndim > 1 else 0.0
        return x[..., idx]

    def differential_voltage(self, x: np.ndarray, node_pos: str, node_neg: str) -> np.ndarray | float:
        """``v(node_pos) - v(node_neg)`` extracted from a solution array."""
        return self.voltage(x, node_pos) - self.voltage(x, node_neg)

    # -- evaluation ----------------------------------------------------------
    def _as_points(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            if x.shape[0] != self.n_unknowns:
                raise CircuitError(
                    f"unknown vector has length {x.shape[0]}, expected {self.n_unknowns}"
                )
            return x.reshape(1, -1), True
        if x.ndim == 2:
            if x.shape[1] != self.n_unknowns:
                raise CircuitError(
                    f"unknown array has {x.shape[1]} columns, expected {self.n_unknowns}"
                )
            return x, False
        raise CircuitError(f"unknown array must be 1-D or 2-D, got shape {x.shape}")

    def evaluate(self, x: np.ndarray) -> MNAEvaluation:
        """Evaluate ``q``, ``f`` and their Jacobians at one or many points."""
        X, _ = self._as_points(x)
        n_points = X.shape[0]
        n = self.n_unknowns
        Q = np.zeros((n_points, n))
        F = np.zeros((n_points, n))
        C = np.zeros((n_points, n, n))
        G = np.zeros((n_points, n, n))
        for device in self._devices:
            device.stamp_static(X, F, G)
            device.stamp_dynamic(X, Q, C)
        return MNAEvaluation(q=Q, f=F, capacitance=C, conductance=G)

    def q(self, x: np.ndarray) -> np.ndarray:
        """Charge/flux vector ``q(x)`` for a single unknown vector."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X)
        return evaluation.q[0] if single else evaluation.q

    def f(self, x: np.ndarray) -> np.ndarray:
        """Conductive current vector ``f(x)`` for a single unknown vector."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X)
        return evaluation.f[0] if single else evaluation.f

    def capacitance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Jacobian ``C(x) = dq/dx`` at a single point (dense ``(n, n)``)."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X)
        return evaluation.capacitance[0] if single else evaluation.capacitance

    def conductance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Jacobian ``G(x) = df/dx`` at a single point (dense ``(n, n)``)."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X)
        return evaluation.conductance[0] if single else evaluation.conductance

    # -- sources --------------------------------------------------------------
    def source(self, times: float | np.ndarray) -> np.ndarray:
        """Excitation vector(s) ``b(t)``.

        ``times`` may be a scalar (returns shape ``(n,)``) or an array of
        ``P`` time points (returns ``(P, n)``).
        """
        scalar = np.isscalar(times) or np.ndim(times) == 0
        t = np.atleast_1d(np.asarray(times, dtype=float))
        B = np.zeros((t.shape[0], self.n_unknowns))
        for device in self._devices:
            device.stamp_source(t, B)
        return B[0] if scalar else B

    def source_bivariate(
        self, t1: float | np.ndarray, t2: float | np.ndarray, scales
    ) -> np.ndarray:
        """Multi-time excitation ``b_hat(t1, t2)`` under the given time scales.

        ``t1`` and ``t2`` must broadcast to a common shape of ``P`` points;
        the result has shape ``(P, n)`` (or ``(n,)`` for scalar inputs).
        """
        scalar = (np.isscalar(t1) or np.ndim(t1) == 0) and (np.isscalar(t2) or np.ndim(t2) == 0)
        t1_arr, t2_arr = np.broadcast_arrays(
            np.atleast_1d(np.asarray(t1, dtype=float)),
            np.atleast_1d(np.asarray(t2, dtype=float)),
        )
        t1_flat = t1_arr.ravel()
        t2_flat = t2_arr.ravel()
        B = np.zeros((t1_flat.shape[0], self.n_unknowns))
        for device in self._devices:
            device.stamp_source_bivariate(t1_flat, t2_flat, scales, B)
        return B[0] if scalar else B

    # -- convenience residuals -------------------------------------------------
    def dc_residual(self, x: np.ndarray, *, time: float = 0.0) -> np.ndarray:
        """DC residual ``f(x) + b(time)`` (charges do not contribute at DC)."""
        return self.f(x) + self.source(time)

    def dc_jacobian(self, x: np.ndarray) -> np.ndarray:
        """DC Jacobian ``G(x)``."""
        return self.conductance_matrix(x)

    def gmin_matrix(self, gmin: float) -> np.ndarray:
        """Diagonal conductance ``gmin`` from every node to ground.

        Used by gmin-stepping continuation and as a convergence aid; branch
        rows are left untouched.
        """
        mat = np.zeros((self.n_unknowns, self.n_unknowns))
        for idx in self._node_index.values():
            mat[idx, idx] = gmin
        return mat

    def zero_state(self) -> np.ndarray:
        """An all-zero unknown vector of the right size."""
        return np.zeros(self.n_unknowns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MNASystem({self.circuit.name!r}, unknowns={self.n_unknowns}, "
            f"nodes={self.n_nodes})"
        )
