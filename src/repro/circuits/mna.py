"""Modified nodal analysis (MNA) system.

``MNASystem`` is the compiled form of a :class:`~repro.circuits.netlist.Circuit`:
it evaluates the charge-oriented DAE

    d/dt q(x(t)) + f(x(t)) + b(t) = 0

and its Jacobians for any vector of unknowns ``x`` (node voltages followed by
branch currents).  Every analysis in the library — DC, transient, shooting,
harmonic balance and the multi-time MPDE core — consumes this one object,
which is what makes the performance comparisons between methods
apples-to-apples.

Evaluation is vectorised over *evaluation points*: ``evaluate`` accepts an
``(P, n)`` array of unknown vectors and returns stacked ``q``/``f`` values and
Jacobians for all ``P`` points in one call.  The MPDE discretisation uses
this with ``P = n_fast * n_slow`` (the paper's 40 x 30 grid gives
``P = 1200``), the time-stepping analyses with ``P = 1``.

Performance architecture (compiled stamp patterns)
--------------------------------------------------
Compilation precomputes, once per circuit, the *stamp sparsity patterns* of
the conductance and capacitance Jacobians: the exact (row, col) sequence of
contributions every device makes, deduplicated into CSR structures
(:class:`~repro.linalg.sparse.StampPattern`).  Three evaluation modes build
on them:

* ``evaluate(x)`` — the dense reference path, unchanged semantics: stacked
  ``(P, n, n)`` Jacobians, used by small single-point analyses and as the
  ground truth the sparse path is property-tested against.
* ``evaluate(x, need_jacobian=False)`` — residual-only fast path: devices
  stamp into a no-op accumulator, so no ``(P, n, n)`` storage is ever
  allocated or written.  Line searches, continuation ramps and convergence
  checks run through this.
* ``evaluate_sparse(x)`` — the sparse assembly path: devices write per-point
  stamp values into flat ``(P, nnz_raw)`` buffers which a single vectorised
  scatter reduces to per-point CSR data arrays.  The MPDE / collocation
  Jacobian is then assembled purely numerically
  (:class:`~repro.linalg.sparse.CollocationJacobianAssembler`), never
  materialising dense per-point blocks.

The sparse data arrays are bit-for-bit equal to the dense path (same values,
same summation order), which the property tests assert on random circuits.

Evaluation backends (batched engine)
------------------------------------
All three modes run, by default, on the *batched* device-class evaluation
engine (:mod:`repro.circuits.engine`): devices are grouped by class at
compile time and each group is evaluated by one vectorised
gather/compute/scatter kernel over all ``(P, n_group)`` points — no
per-device Python dispatch.  The per-device loop is retained as the
``"loop"`` reference backend (``EvaluationOptions(evaluation_backend=...)``
at :meth:`Circuit.compile`, or the per-call ``backend=`` override); the two
are property-tested bit-for-bit equal, so the choice trades speed only.  See
``docs/evaluation_engine.md``.

Kernel sharding (parallel execution layer)
------------------------------------------
On the batched backend the class kernels can additionally run *sharded*:
``EvaluationOptions(kernel_backend="sharded", n_workers=...)`` splits the
``P`` grid-point axis across a pool of forked worker processes that
inherited the compiled engine (:mod:`repro.parallel`), with state and
results crossing the process boundary through shared memory.  Every engine
operation is elementwise along ``P``, so the sharded path is bit-for-bit
equal to the serial one.  The pool is built lazily on first use and reused
for the lifetime of the compiled system.  Environment constraints (no
``fork``, a single usable CPU with auto worker count) fall back serially up
front; worker *failures* are handed to a
:class:`~repro.resilience.supervisor.PoolSupervisor`, which restarts the
pool with exponential backoff and a bit-for-bit parity health-probe, and
only disables sharding permanently once the
:class:`~repro.utils.options.RestartPolicy` budget is exhausted.  The
reason for whichever serial fallback happened last is recorded on
:attr:`MNASystem.parallel_fallback_reason`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from ..linalg.sparse import StampPattern
from ..parallel.backends import KERNEL_BACKENDS, resolve_execution
from ..parallel.pool import ShardedKernelPool, WorkerPoolError
from ..resilience.faultinject import fault_site
from ..resilience.supervisor import PoolSupervisor
from ..utils.exceptions import CircuitError, DeviceError, NodeError
from ..utils.logging import get_logger
from ..utils.options import EVALUATION_BACKENDS
from .devices.base import Device, NullStamps, PatternRecorder, PatternValueFiller
from .engine import BatchedEvaluationEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .netlist import Circuit

__all__ = ["MNAEvaluation", "MNASparseEvaluation", "MNASystem"]

_NULL_STAMPS = NullStamps()
_LOG = get_logger("circuits.mna")


@dataclass(frozen=True)
class MNAEvaluation:
    """Stacked evaluation of the circuit equations at ``P`` points.

    Attributes
    ----------
    q:
        Charges/fluxes, shape ``(P, n)``.
    f:
        Conductive currents, shape ``(P, n)``.
    capacitance:
        ``dq/dx`` Jacobians, shape ``(P, n, n)``; ``None`` when the
        evaluation was requested with ``need_jacobian=False``.
    conductance:
        ``df/dx`` Jacobians, shape ``(P, n, n)``; ``None`` when the
        evaluation was requested with ``need_jacobian=False``.
    """

    q: np.ndarray
    f: np.ndarray
    capacitance: np.ndarray | None
    conductance: np.ndarray | None


@dataclass(frozen=True)
class MNASparseEvaluation:
    """Sparse-assembled evaluation of the circuit equations at ``P`` points.

    The Jacobians are carried as deduplicated CSR *data arrays* aligned with
    the system's compiled stamp patterns — one row of values per evaluation
    point — so downstream consumers (the MPDE assembler, block-diagonal
    operators, per-point factorisations) can do purely numeric work.

    Attributes
    ----------
    q, f:
        As in :class:`MNAEvaluation`, shape ``(P, n)``.
    c_data:
        Capacitance CSR data, shape ``(P, system.dynamic_pattern.nnz)``;
        ``None`` for residual-only evaluations.
    g_data:
        Conductance CSR data, shape ``(P, system.static_pattern.nnz)``;
        ``None`` for residual-only evaluations.
    system:
        The :class:`MNASystem` the patterns belong to.
    """

    q: np.ndarray
    f: np.ndarray
    c_data: np.ndarray | None
    g_data: np.ndarray | None
    system: "MNASystem"

    def conductance_csr(self, point: int = 0) -> sp.csr_matrix:
        """CSR conductance Jacobian ``G(x_p)`` of evaluation point ``point``."""
        if self.g_data is None:
            raise CircuitError("evaluation was residual-only; no Jacobian data available")
        return self.system.static_pattern.csr_from_data(self.g_data[point])

    def capacitance_csr(self, point: int = 0) -> sp.csr_matrix:
        """CSR capacitance Jacobian ``C(x_p)`` of evaluation point ``point``."""
        if self.c_data is None:
            raise CircuitError("evaluation was residual-only; no Jacobian data available")
        return self.system.dynamic_pattern.csr_from_data(self.c_data[point])


class MNASystem:
    """Compiled circuit equations (see module docstring).

    Instances are created by :meth:`repro.circuits.netlist.Circuit.compile`;
    they should not be constructed directly.
    """

    def __init__(
        self,
        circuit: "Circuit",
        node_index: Mapping[str, int],
        unknown_names: Sequence[str],
        n_unknowns: int,
        evaluation_backend: str = "batched",
        kernel_backend: str = "serial",
        n_workers: int | None = None,
        worker_timeout_s: float | None = 120.0,
        restart_policy=None,
    ) -> None:
        self.circuit = circuit
        self._node_index = dict(node_index)
        self.unknown_names = tuple(unknown_names)
        self.n_unknowns = int(n_unknowns)
        if len(self.unknown_names) != self.n_unknowns:
            raise CircuitError(
                "internal error: unknown_names length does not match n_unknowns"
            )
        self._validate_backend(evaluation_backend)
        self._validate_kernel_backend(kernel_backend)
        self.evaluation_backend = evaluation_backend
        self.kernel_backend = kernel_backend
        self.n_workers = n_workers
        #: Per-reply watchdog budget of the sharded worker pool; ``None``
        #: disables the watchdog (see ``EvaluationOptions.worker_timeout_s``).
        self.worker_timeout_s = worker_timeout_s
        self._devices: tuple[Device, ...] = circuit.devices
        self._branch_index = self._build_branch_index()
        self._static_pattern, self._dynamic_pattern = self._compile_stamp_patterns()
        self._row_owners: tuple[tuple[str, ...], ...] | None = None
        self._engine: BatchedEvaluationEngine | None = None
        #: One sharded pool per compiled system, reused across evaluations.
        #: A per-call ``n_workers`` override that differs from the pool's
        #: worker count *replaces* it (close + re-fork) — correct, but not
        #: free, so alternating override values per call is an anti-pattern.
        self._kernel_pool: ShardedKernelPool | None = None
        self._kernel_pool_workers = 0
        #: Supervised healing of the sharded pool: worker failures restart
        #: the pool (with backoff and a parity probe) instead of disabling
        #: it; only an exhausted restart budget goes sticky-serial.
        self.supervisor = PoolSupervisor("kernel_shard", restart_policy)
        #: Sticky disable, set only once the supervisor's restart budget is
        #: exhausted (or for unsupervisable failures); every later sharded
        #: request then runs serially.
        self._sharding_disabled_reason: str | None = None
        self._parallel_fallback_reason = ""

    def _build_branch_index(self) -> dict[str, int]:
        index: dict[str, int] = {}
        for device in self._devices:
            for label, idx in zip(device.branch_labels(), device._branch_idx):
                index[label] = idx
                index.setdefault(device.name, idx)
        return index

    def _compile_stamp_patterns(self) -> tuple[StampPattern, StampPattern]:
        """Record every device's stamp sparsity pattern (once, at compile time).

        Each device's stamps are executed against a recording accumulator; the
        (row, col) call sequence — which by the stamping contract depends only
        on topology and device parameters, never on ``x`` — becomes the
        compiled pattern the sparse evaluation paths rely on.
        """
        n = self.n_unknowns
        probe = np.full((1, n), 0.1)
        scratch = np.zeros((1, n))
        static_recorder = PatternRecorder()
        dynamic_recorder = PatternRecorder()
        for device in self._devices:
            device.stamp_static(probe, scratch, static_recorder)
            device.stamp_dynamic(probe, scratch, dynamic_recorder)
        static = StampPattern(static_recorder.rows, static_recorder.cols, n)
        dynamic = StampPattern(dynamic_recorder.rows, dynamic_recorder.cols, n)
        return static, dynamic

    # -- bookkeeping -------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of non-ground node-voltage unknowns."""
        return len(self._node_index)

    @property
    def devices(self) -> tuple[Device, ...]:
        """Devices of the underlying circuit."""
        return self._devices

    @property
    def static_pattern(self) -> StampPattern:
        """Compiled sparsity pattern of the conductance Jacobian ``G``."""
        return self._static_pattern

    @property
    def dynamic_pattern(self) -> StampPattern:
        """Compiled sparsity pattern of the capacitance Jacobian ``C``."""
        return self._dynamic_pattern

    def dynamic_unknowns_mask(self) -> np.ndarray:
        """Boolean mask of unknowns that appear in ``q`` (structurally dynamic).

        Derived from the compiled capacitance pattern, so it costs nothing at
        run time; used e.g. by the transient LTE controller to restrict error
        control to differential unknowns.
        """
        mask = np.zeros(self.n_unknowns, dtype=bool)
        mask[self._dynamic_pattern.cols] = True
        return mask

    def residual_row_owners(self) -> tuple[tuple[str, ...], ...]:
        """Device instance names stamping each residual row (``n`` tuples).

        Derived from the same per-device pattern recording that compiles the
        stamp patterns — the (row, device) incidence depends only on
        topology, never on ``x`` — and cached after the first call.  This is
        what lets terminal-failure diagnostics
        (:mod:`repro.resilience.diagnostics`) attribute a NaN or dominant
        residual row to the device instances that write it.  Rows nothing
        stamps (e.g. a floating node) get an empty tuple, itself a useful
        diagnostic.
        """
        if self._row_owners is None:
            n = self.n_unknowns
            probe = np.full((1, n), 0.1)
            scratch = np.zeros((1, n))
            owners: list[list[str]] = [[] for _ in range(n)]
            for device in self._devices:
                static_recorder = PatternRecorder()
                dynamic_recorder = PatternRecorder()
                device.stamp_static(probe, scratch, static_recorder)
                device.stamp_dynamic(probe, scratch, dynamic_recorder)
                rows = set(static_recorder.rows) | set(dynamic_recorder.rows)
                for row in sorted(rows):
                    owners[int(row)].append(device.name)
            self._row_owners = tuple(tuple(names) for names in owners)
        return self._row_owners

    def node_index(self, node: str) -> int:
        """Index of a node voltage in the unknown vector (-1 for ground)."""
        if self.circuit.is_ground(node):
            return -1
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise NodeError(f"unknown node {node!r} in circuit {self.circuit.name!r}") from exc

    def branch_index(self, device_name: str) -> int:
        """Index of the (first) branch-current unknown of ``device_name``."""
        try:
            return self._branch_index[device_name]
        except KeyError as exc:
            raise CircuitError(
                f"device {device_name!r} has no branch-current unknown"
            ) from exc

    def voltage(self, x: np.ndarray, node: str) -> np.ndarray | float:
        """Extract the voltage of ``node`` from a solution vector or array.

        Works on a single unknown vector (shape ``(n,)``), a stack of vectors
        (``(P, n)``) or a multi-time grid array (``(n1, n2, n)``); ground
        returns zeros of the matching shape.
        """
        idx = self.node_index(node)
        x = np.asarray(x, dtype=float)
        if idx < 0:
            return np.zeros(x.shape[:-1]) if x.ndim > 1 else 0.0
        return x[..., idx]

    def differential_voltage(self, x: np.ndarray, node_pos: str, node_neg: str) -> np.ndarray | float:
        """``v(node_pos) - v(node_neg)`` extracted from a solution array."""
        return self.voltage(x, node_pos) - self.voltage(x, node_neg)

    # -- evaluation ----------------------------------------------------------
    def _as_points(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            if x.shape[0] != self.n_unknowns:
                raise CircuitError(
                    f"unknown vector has length {x.shape[0]}, expected {self.n_unknowns}"
                )
            return x.reshape(1, -1), True
        if x.ndim == 2:
            if x.shape[1] != self.n_unknowns:
                raise CircuitError(
                    f"unknown array has {x.shape[1]} columns, expected {self.n_unknowns}"
                )
            return x, False
        raise CircuitError(f"unknown array must be 1-D or 2-D, got shape {x.shape}")

    @property
    def engine(self) -> BatchedEvaluationEngine:
        """The compiled batched evaluation engine (built lazily, cached)."""
        if self._engine is None:
            self._engine = BatchedEvaluationEngine(self)
        return self._engine

    @staticmethod
    def _validate_backend(backend: str) -> None:
        if backend not in EVALUATION_BACKENDS:
            raise CircuitError(
                f"unknown evaluation backend {backend!r}; use one of {EVALUATION_BACKENDS}"
            )

    @staticmethod
    def _validate_kernel_backend(kernel_backend: str) -> None:
        if kernel_backend not in KERNEL_BACKENDS:
            raise CircuitError(
                f"unknown kernel backend {kernel_backend!r}; use one of {KERNEL_BACKENDS}"
            )

    def _resolve_backend(self, backend: str | None) -> str:
        if backend is None:
            return self.evaluation_backend
        self._validate_backend(backend)
        return backend

    # -- kernel sharding (parallel execution layer) ------------------------
    @property
    def parallel_fallback_reason(self) -> str:
        """Why the last sharded-evaluation request ran serially ("" if it didn't).

        Set whenever sharding was *requested* but the serial path ran
        instead — environment constraints (single CPU with auto worker
        count, no ``fork``), an explicit ``n_workers=1``, or a worker
        failure whose supervised healing exhausted the restart budget.

        Reason lifecycle
        ----------------
        This property has *last-request* semantics: a later sharded success
        clears a reason left by an earlier call (and a later fallback
        overwrites it).  It deliberately does **not** remember history — for
        that, a per-solve view with *first-reason-wins* semantics is
        snapshotted onto ``MPDEStats.parallel_fallback_reason`` (reset at
        the start of every solve, frozen at its end), and the full healing
        history lives on ``MPDEStats.supervisor_trace`` /
        :attr:`MNASystem.supervisor` ``.trace``.
        """
        return self._parallel_fallback_reason

    @property
    def sharding_disabled_reason(self) -> str:
        """The sticky reason sharding is disabled for this system ("" if live).

        Non-empty only once the supervisor's restart budget is exhausted
        (``"disabled (budget exhausted): ..."``) — transient healed
        failures never set it.
        """
        return self._sharding_disabled_reason or ""

    def _disable_sharding(self, reason: str) -> None:
        self._sharding_disabled_reason = reason
        self._parallel_fallback_reason = reason
        self.close()
        _LOG.warning("%s; falling back to serial kernel evaluation", reason)

    def _probe_sharded_parity(self, pool: ShardedKernelPool) -> bool:
        """Health-probe a restarted pool: a tiny sharded evaluation must
        match the in-process serial engine bit-for-bit (the sharded path's
        core contract) before the pool is re-admitted to the solve path."""
        X = np.full((2, self.n_unknowns), 0.1)
        sharded = pool.evaluate(X, need_static_jacobian=True, need_dynamic_jacobian=True)
        serial = self.engine.evaluate(X, need_static_jacobian=True, need_dynamic_jacobian=True)
        for got, want in zip(sharded, serial):
            if (got is None) != (want is None):
                return False
            if got is not None and not np.array_equal(got, want):
                return False
        return True

    def _kernel_pool_for(self, n_workers: int) -> ShardedKernelPool:
        if self._kernel_pool is None or self._kernel_pool_workers != n_workers:
            self.close()
            self._kernel_pool = ShardedKernelPool(
                self.engine,
                n_unknowns=self.n_unknowns,
                nnz_dynamic=self._dynamic_pattern.nnz,
                nnz_static=self._static_pattern.nnz,
                n_workers=n_workers,
                reply_timeout_s=self.worker_timeout_s,
            )
            self._kernel_pool_workers = n_workers
        return self._kernel_pool

    def close(self) -> None:
        """Release the sharded worker pool, if any (idempotent).

        Pools also shut down at garbage collection / interpreter exit, so
        calling this is only needed when tearing down many compiled systems
        eagerly.
        """
        if self._kernel_pool is not None:
            self._kernel_pool.close()
            self._kernel_pool = None
            self._kernel_pool_workers = 0

    def _engine_evaluate(
        self,
        X: np.ndarray,
        *,
        need_static_jacobian: bool,
        need_dynamic_jacobian: bool,
        kernel_backend: str | None,
        n_workers: int | None,
    ):
        """Engine evaluation on the resolved (serial or sharded) kernel path."""
        requested = kernel_backend if kernel_backend is not None else self.kernel_backend
        if kernel_backend is not None:
            self._validate_kernel_backend(kernel_backend)
        workers = n_workers if n_workers is not None else self.n_workers
        if requested == "sharded":
            if self._sharding_disabled_reason is not None:
                self._parallel_fallback_reason = self._sharding_disabled_reason
            else:
                resolved = resolve_execution(requested, workers)
                if not resolved.sharded:
                    self._parallel_fallback_reason = resolved.fallback_reason
                elif X.shape[0] < 2:
                    # A single evaluation point cannot be split; not recorded
                    # as a fallback (the next grid-sized call still shards).
                    pass
                else:
                    pool = self._kernel_pool_for(resolved.n_workers)
                    while True:
                        try:
                            result = pool.evaluate(
                                X,
                                need_static_jacobian=need_static_jacobian,
                                need_dynamic_jacobian=need_dynamic_jacobian,
                            )
                        except WorkerPoolError as exc:
                            # The pool tore itself down on the failed
                            # exchange; the supervisor restarts it (with
                            # backoff and a parity probe) and we retry, or —
                            # budget exhausted — sharding goes sticky-serial.
                            self._kernel_pool = None
                            self._kernel_pool_workers = 0
                            healed_pool: list[ShardedKernelPool] = []

                            def _restart() -> None:
                                self.close()
                                healed_pool.append(
                                    self._kernel_pool_for(resolved.n_workers)
                                )

                            disabled = self.supervisor.handle_failure(
                                f"sharded evaluation failed ({exc})",
                                restart=_restart,
                                probe=lambda: self._probe_sharded_parity(
                                    healed_pool[-1]
                                ),
                            )
                            if disabled is not None:
                                self._disable_sharding(disabled)
                                break
                            pool = healed_pool[-1]
                        else:
                            # The property reflects the *last* sharded request:
                            # a success clears a reason left by an earlier call
                            # (e.g. a previous auto-resolved-serial solve).
                            self._parallel_fallback_reason = ""
                            fault_site("mna.evaluate", f=result[1])
                            return result
        result = self.engine.evaluate(
            X,
            need_static_jacobian=need_static_jacobian,
            need_dynamic_jacobian=need_dynamic_jacobian,
        )
        fault_site("mna.evaluate", f=result[1])
        return result

    @staticmethod
    def _which_flags(which: str) -> tuple[bool, bool]:
        """Map a ``which`` selector onto (conductance, capacitance) needs."""
        if which == "both":
            return True, True
        if which == "conductance":
            return True, False
        if which == "capacitance":
            return False, True
        raise CircuitError(
            f"which must be 'both', 'conductance' or 'capacitance', got {which!r}"
        )

    def evaluate(
        self,
        x: np.ndarray,
        *,
        need_jacobian: bool = True,
        which: str = "both",
        backend: str | None = None,
        kernel_backend: str | None = None,
        n_workers: int | None = None,
    ) -> MNAEvaluation:
        """Evaluate ``q``, ``f`` (and, optionally, dense Jacobians) at one or many points.

        ``need_jacobian=False`` is the residual-only fast path: no Jacobian
        storage of any kind is allocated — the dominant cost for large point
        counts.  ``which`` restricts a Jacobian evaluation to one block
        (``"conductance"`` or ``"capacitance"``): only the requested
        ``(P, n, n)`` stack is allocated and filled, the other is ``None``.
        ``backend`` overrides the system's evaluation backend for this call;
        ``kernel_backend`` / ``n_workers`` likewise override the kernel
        execution mode of the batched engine (serial vs sharded — see the
        module docstring).
        """
        X, _ = self._as_points(x)
        n_points = X.shape[0]
        n = self.n_unknowns
        need_g, need_c = self._which_flags(which)
        need_g &= need_jacobian
        need_c &= need_jacobian

        if self._resolve_backend(backend) == "batched":
            Q, F, c_data, g_data = self._engine_evaluate(
                X,
                need_static_jacobian=need_g,
                need_dynamic_jacobian=need_c,
                kernel_backend=kernel_backend,
                n_workers=n_workers,
            )
            G = C = None
            if need_g:
                G = np.zeros((n_points, n, n))
                G[:, self._static_pattern.rows, self._static_pattern.cols] = g_data
            if need_c:
                C = np.zeros((n_points, n, n))
                C[:, self._dynamic_pattern.rows, self._dynamic_pattern.cols] = c_data
            return MNAEvaluation(q=Q, f=F, capacitance=C, conductance=G)

        Q = np.zeros((n_points, n))
        F = np.zeros((n_points, n))
        G = np.zeros((n_points, n, n)) if need_g else None
        C = np.zeros((n_points, n, n)) if need_c else None
        g_acc: object = G if need_g else _NULL_STAMPS
        c_acc: object = C if need_c else _NULL_STAMPS
        for device in self._devices:
            device.stamp_static(X, F, g_acc)
            device.stamp_dynamic(X, Q, c_acc)
        return MNAEvaluation(q=Q, f=F, capacitance=C, conductance=G)

    def evaluate_sparse(
        self,
        x: np.ndarray,
        *,
        need_jacobian: bool = True,
        backend: str | None = None,
        kernel_backend: str | None = None,
        n_workers: int | None = None,
    ) -> MNASparseEvaluation:
        """Evaluate ``q``, ``f`` and sparse-assembled Jacobian data.

        On the batched backend (the default) the compiled engine gathers all
        member terminal values per device class, evaluates each class kernel
        over all ``(P, n_group)`` points at once and scatters straight into
        the compiled pattern buffers — zero per-device Python dispatch.  The
        ``"loop"`` backend is the per-device reference path; both produce
        bit-for-bit identical results.  No dense ``(P, n, n)`` intermediates
        are ever formed.  ``kernel_backend`` / ``n_workers`` override the
        kernel execution mode of the batched engine (serial vs sharded —
        bit-for-bit equal as well; see the module docstring).
        """
        X, _ = self._as_points(x)
        n_points = X.shape[0]
        n = self.n_unknowns

        if self._resolve_backend(backend) == "batched":
            Q, F, c_data, g_data = self._engine_evaluate(
                X,
                need_static_jacobian=need_jacobian,
                need_dynamic_jacobian=need_jacobian,
                kernel_backend=kernel_backend,
                n_workers=n_workers,
            )
            return MNASparseEvaluation(q=Q, f=F, c_data=c_data, g_data=g_data, system=self)

        Q = np.zeros((n_points, n))
        F = np.zeros((n_points, n))
        if need_jacobian:
            g_raw = np.zeros((n_points, self._static_pattern.nnz_raw))
            c_raw = np.zeros((n_points, self._dynamic_pattern.nnz_raw))
            g_acc: object = PatternValueFiller(
                g_raw, self._static_pattern.raw_rows, self._static_pattern.raw_cols
            )
            c_acc: object = PatternValueFiller(
                c_raw, self._dynamic_pattern.raw_rows, self._dynamic_pattern.raw_cols
            )
        else:
            g_raw = c_raw = None
            g_acc = c_acc = _NULL_STAMPS
        for device in self._devices:
            device.stamp_static(X, F, g_acc)
            device.stamp_dynamic(X, Q, c_acc)
        if need_jacobian:
            # A filler validates every call it sees; a device that *skipped*
            # trailing recorded calls would leave silent zeros behind, so the
            # cursor must land exactly on the end of the pattern.
            if (
                g_acc.cursor != self._static_pattern.nnz_raw
                or c_acc.cursor != self._dynamic_pattern.nnz_raw
            ):
                raise DeviceError(
                    "device stamps made fewer Jacobian contributions than the compiled "
                    "pattern records; stamp structure must not depend on x "
                    f"(static {g_acc.cursor}/{self._static_pattern.nnz_raw}, "
                    f"dynamic {c_acc.cursor}/{self._dynamic_pattern.nnz_raw})"
                )
            g_data = self._static_pattern.dedup(g_raw)
            c_data = self._dynamic_pattern.dedup(c_raw)
        else:
            g_data = c_data = None
        return MNASparseEvaluation(q=Q, f=F, c_data=c_data, g_data=g_data, system=self)

    def q(self, x: np.ndarray) -> np.ndarray:
        """Charge/flux vector ``q(x)`` for a single unknown vector."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X, need_jacobian=False)
        return evaluation.q[0] if single else evaluation.q

    def f(self, x: np.ndarray) -> np.ndarray:
        """Conductive current vector ``f(x)`` for a single unknown vector."""
        X, single = self._as_points(x)
        evaluation = self.evaluate(X, need_jacobian=False)
        return evaluation.f[0] if single else evaluation.f

    def capacitance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Jacobian ``C(x) = dq/dx`` at a single point (dense ``(n, n)``).

        Uses the ``which="capacitance"`` fast path: only the capacitance
        ``(P, n, n)`` stack is allocated and filled, never the conductance
        block.
        """
        X, single = self._as_points(x)
        evaluation = self.evaluate(X, which="capacitance")
        return evaluation.capacitance[0] if single else evaluation.capacitance

    def conductance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Jacobian ``G(x) = df/dx`` at a single point (dense ``(n, n)``).

        Uses the ``which="conductance"`` fast path: only the conductance
        ``(P, n, n)`` stack is allocated and filled, never the capacitance
        block.
        """
        X, single = self._as_points(x)
        evaluation = self.evaluate(X, which="conductance")
        return evaluation.conductance[0] if single else evaluation.conductance

    def conductance_csr(self, x: np.ndarray) -> sp.csr_matrix:
        """Sparse-assembled conductance Jacobian ``G(x)`` at a single point."""
        X, _ = self._as_points(np.asarray(x, dtype=float).ravel())
        return self.evaluate_sparse(X).conductance_csr(0)

    def capacitance_csr(self, x: np.ndarray) -> sp.csr_matrix:
        """Sparse-assembled capacitance Jacobian ``C(x)`` at a single point."""
        X, _ = self._as_points(np.asarray(x, dtype=float).ravel())
        return self.evaluate_sparse(X).capacitance_csr(0)

    # -- sources --------------------------------------------------------------
    def source(self, times: float | np.ndarray) -> np.ndarray:
        """Excitation vector(s) ``b(t)``.

        ``times`` may be a scalar (returns shape ``(n,)``) or an array of
        ``P`` time points (returns ``(P, n)``).
        """
        scalar = np.isscalar(times) or np.ndim(times) == 0
        t = np.atleast_1d(np.asarray(times, dtype=float))
        if self.evaluation_backend == "batched":
            B = self.engine.source(t)
        else:
            B = np.zeros((t.shape[0], self.n_unknowns))
            for device in self._devices:
                device.stamp_source(t, B)
        return B[0] if scalar else B

    def source_bivariate(
        self, t1: float | np.ndarray, t2: float | np.ndarray, scales
    ) -> np.ndarray:
        """Multi-time excitation ``b_hat(t1, t2)`` under the given time scales.

        ``t1`` and ``t2`` must broadcast to a common shape of ``P`` points;
        the result has shape ``(P, n)`` (or ``(n,)`` for scalar inputs).
        """
        scalar = (np.isscalar(t1) or np.ndim(t1) == 0) and (np.isscalar(t2) or np.ndim(t2) == 0)
        t1_arr, t2_arr = np.broadcast_arrays(
            np.atleast_1d(np.asarray(t1, dtype=float)),
            np.atleast_1d(np.asarray(t2, dtype=float)),
        )
        t1_flat = t1_arr.ravel()
        t2_flat = t2_arr.ravel()
        if self.evaluation_backend == "batched":
            B = self.engine.source_bivariate(t1_flat, t2_flat, scales)
        else:
            B = np.zeros((t1_flat.shape[0], self.n_unknowns))
            for device in self._devices:
                device.stamp_source_bivariate(t1_flat, t2_flat, scales, B)
        return B[0] if scalar else B

    # -- convenience residuals -------------------------------------------------
    def dc_residual(self, x: np.ndarray, *, time: float = 0.0) -> np.ndarray:
        """DC residual ``f(x) + b(time)`` (charges do not contribute at DC)."""
        return self.f(x) + self.source(time)

    def dc_jacobian(self, x: np.ndarray) -> np.ndarray:
        """DC Jacobian ``G(x)``."""
        return self.conductance_matrix(x)

    def gmin_matrix(self, gmin: float) -> sp.csr_matrix:
        """Sparse diagonal conductance ``gmin`` from every node to ground.

        Used by gmin-stepping continuation and as a convergence aid; branch
        rows are left untouched (their diagonal entries are structural
        zeros).  Returned as CSR so it composes with both sparse and dense
        Jacobians; callers that only need the diagonal can use
        ``.diagonal()``.
        """
        diag = np.zeros(self.n_unknowns)
        for idx in self._node_index.values():
            diag[idx] = gmin
        return sp.diags(diag, format="csr")

    def zero_state(self) -> np.ndarray:
        """An all-zero unknown vector of the right size."""
        return np.zeros(self.n_unknowns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MNASystem({self.circuit.name!r}, unknowns={self.n_unknowns}, "
            f"nodes={self.n_nodes})"
        )
