"""A small direct-conversion receiver front end built from the mixer library.

The paper motivates difference time scales with direct-conversion receivers:
the information rides on a carrier near the LO (or its harmonic) and must be
recovered at baseband.  This module assembles a complete, runnable receive
chain — mixer plus baseband post-processing — and a simple slicer that
recovers the transmitted bits from the down-converted envelope.  It is used
by the ``examples/bitstream_downconversion.py`` example and by the
integration tests that check end-to-end bit recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solver import MPDEResult, solve_mpde
from ..signals.bitstream import BitStreamEnvelope
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError
from ..utils.options import MPDEOptions
from .mixers import MixerCircuit, balanced_lo_doubling_mixer, default_bit_envelope

__all__ = ["BitRecovery", "DirectConversionReceiver", "recover_bits"]


@dataclass(frozen=True)
class BitRecovery:
    """Outcome of slicing a down-converted envelope back into bits.

    Attributes
    ----------
    bits:
        The recovered bit values.
    samples:
        The envelope samples (one per bit slot) the decisions were based on.
    threshold:
        The decision threshold used.
    """

    bits: tuple[int, ...]
    samples: tuple[float, ...]
    threshold: float

    def matches(self, expected: tuple[int, ...] | list[int]) -> bool:
        """Whether the recovered bits equal ``expected`` (up to cyclic shift).

        The multi-time solution fixes an arbitrary phase origin on the slow
        axis, so the recovered pattern may be cyclically rotated relative to
        the transmitted one; any rotation counts as a match.
        """
        expected = tuple(int(b) for b in expected)
        if len(expected) != len(self.bits):
            return False
        doubled = self.bits + self.bits
        for shift in range(len(self.bits)):
            if doubled[shift : shift + len(expected)] == expected:
                return True
        return False


def recover_bits(
    envelope: Waveform,
    n_bits: int,
    *,
    threshold: float | None = None,
    mode: str = "center",
) -> BitRecovery:
    """Slice a baseband envelope into ``n_bits`` decisions.

    The envelope is assumed to span exactly one repetition of the bit
    pattern (one difference-frequency period).

    Parameters
    ----------
    envelope:
        The baseband decision waveform.
    n_bits:
        Number of bit slots in the span.
    threshold:
        Decision threshold; defaults to the midrange of the per-bit samples.
    mode:
        ``"center"`` decides each bit from the sample at the centre of its
        slot; ``"peak"`` uses the largest sample within the slot, which is
        the right choice for non-coherent (magnitude) detection where the
        difference-frequency beat may pass through zero inside a slot.
    """
    if n_bits < 1:
        raise AnalysisError("n_bits must be at least 1")
    if mode not in ("center", "peak"):
        raise AnalysisError(f"unknown bit-decision mode {mode!r}; use 'center' or 'peak'")
    duration = envelope.duration
    if duration <= 0:
        raise AnalysisError("envelope must span a positive duration")
    bit_period = duration / n_bits
    t0 = envelope.times[0]
    if mode == "center":
        centres = t0 + (np.arange(n_bits) + 0.5) * bit_period
        samples = np.asarray(envelope(centres), dtype=float)
    else:
        samples = np.empty(n_bits)
        fine = np.linspace(0.0, bit_period, 64, endpoint=False)
        for k in range(n_bits):
            slot = t0 + k * bit_period + fine
            samples[k] = float(np.max(envelope(slot)))
    if threshold is None:
        threshold = 0.5 * (float(np.max(samples)) + float(np.min(samples)))
    bits = tuple(int(s > threshold) for s in samples)
    return BitRecovery(bits=bits, samples=tuple(float(s) for s in samples), threshold=float(threshold))


@dataclass
class DirectConversionReceiver:
    """Mixer + MPDE solve + bit slicer, packaged as one object.

    Parameters
    ----------
    mixer:
        The mixer front end (defaults to the paper's balanced LO-doubling
        mixer with its four-bit test pattern).
    options:
        MPDE solver options (grid resolution etc.).
    """

    mixer: MixerCircuit
    options: MPDEOptions

    @staticmethod
    def paper_receiver(
        *,
        bits: tuple[int, ...] = (1, 0, 1, 1),
        lo_frequency: float = 450.0e6,
        difference_frequency: float = 15.0e3,
        n_fast: int = 40,
        n_slow: int = 30,
    ) -> "DirectConversionReceiver":
        """The receiver of the paper's Section 3, with a configurable bit pattern."""
        scales_period = 1.0 / difference_frequency
        envelope = default_bit_envelope(scales_period, bits=bits)
        mixer = balanced_lo_doubling_mixer(
            lo_frequency=lo_frequency,
            difference_frequency=difference_frequency,
            envelope=envelope,
        )
        return DirectConversionReceiver(
            mixer=mixer, options=MPDEOptions(n_fast=n_fast, n_slow=n_slow)
        )

    def transmitted_bits(self) -> tuple[int, ...]:
        """The bit pattern carried by the RF drive (if it is a bit stream)."""
        for source_name in ("vrfp", "vrf"):
            try:
                device = self.mixer.circuit.device(source_name)
            except Exception:  # noqa: BLE001 - probing for an optional device
                continue
            stimulus = getattr(device, "stimulus", None)
            parts = getattr(stimulus, "parts", (stimulus,))
            for part in parts:
                envelope = getattr(part, "envelope", None)
                if isinstance(envelope, BitStreamEnvelope):
                    return envelope.bits
        raise AnalysisError("the mixer's RF drive is not modulated by a bit stream")

    def run(self) -> tuple[MPDEResult, BitRecovery]:
        """Solve the MPDE and recover the bits from the baseband envelope.

        Because the RF carrier sits ``fd`` away from the doubled LO, the
        down-converted signal is the bit envelope multiplied by a beat at the
        difference frequency (``m(t) * cos(2*pi*fd*t + phi)``).  The slicer
        therefore operates non-coherently, on the magnitude of the
        (zero-mean) baseband waveform, which tracks the transmitted bit
        amplitudes independent of the beat phase.
        """
        result = solve_mpde(self.mixer.compile(), self.mixer.scales, self.options)
        envelope = result.baseband_envelope(
            self.mixer.output_pos, node_neg=self.mixer.output_neg, mode="mean"
        )
        magnitude = Waveform(
            envelope.times, np.abs(envelope.values - envelope.mean()), name=envelope.name
        )
        bits = self.transmitted_bits()
        recovery = recover_bits(magnitude, n_bits=len(bits), mode="peak")
        return result, recovery
