"""RF application layer: mixer circuits, receiver chain and RF metrics."""

from .ideal_mixing import (
    difference_tone_amplitude,
    ideal_product_waveform,
    scaled_bivariate_product,
    zhat_sheared,
    zhat_unsheared,
)
from .metrics import (
    ConversionMetrics,
    adjacent_channel_power_ratio,
    baseband_distortion,
    conversion_gain,
    conversion_metrics,
    eye_opening,
    lo_feedthrough_ratio,
)
from .mixers import (
    DoublerCircuit,
    MixerCircuit,
    balanced_lo_doubling_mixer,
    default_bit_envelope,
    gilbert_cell_mixer,
    ideal_multiplier_mixer,
    lo_frequency_doubler,
    unbalanced_switching_mixer,
)
from .receiver import BitRecovery, DirectConversionReceiver, recover_bits

__all__ = [
    "MixerCircuit",
    "DoublerCircuit",
    "ideal_multiplier_mixer",
    "unbalanced_switching_mixer",
    "balanced_lo_doubling_mixer",
    "gilbert_cell_mixer",
    "lo_frequency_doubler",
    "default_bit_envelope",
    "ConversionMetrics",
    "conversion_gain",
    "conversion_metrics",
    "baseband_distortion",
    "eye_opening",
    "lo_feedthrough_ratio",
    "adjacent_channel_power_ratio",
    "BitRecovery",
    "DirectConversionReceiver",
    "recover_bits",
    "zhat_unsheared",
    "zhat_sheared",
    "scaled_bivariate_product",
    "ideal_product_waveform",
    "difference_tone_amplitude",
]
