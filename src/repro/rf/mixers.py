"""Down-conversion mixer circuit builders.

Three mixers of increasing realism, matching the progression of the paper:

* :func:`ideal_multiplier_mixer` — a behavioural multiplying transconductor
  driving an RC load (the circuit embodiment of the Section 2 ideal mixing
  example).  Its conversion behaviour has a closed form, which the tests use
  to validate the whole MPDE pipeline end to end.
* :func:`unbalanced_switching_mixer` — a single MOS switch chopping the RF
  signal at the LO rate.  Small (6 unknowns) and strongly nonlinear, it is
  the workhorse of the speed-up and grid-ablation benchmarks.
* :func:`balanced_lo_doubling_mixer` — the paper's Section 3 circuit: a
  lower MOS pair acting as an LO frequency doubler feeding an upper
  differential pair that mixes the doubled LO with the RF bit stream,
  adapted from the CMOS balanced harmonic mixer of Zhang, Chen & Lau
  (RAWCON 2000).  The difference frequency of interest is
  ``fd = 2*f1 - f2`` (Eq. (12) of the paper).

Each builder returns a :class:`MixerCircuit` bundling the netlist, the node
names of interest, the recommended sheared time scales and the drive
amplitudes needed by the metric helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuits.devices import (
    BJTParams,
    Capacitor,
    CurrentSource,
    MOSFETParams,
    MultiplierCurrentSource,
    NMOS,
    NPN,
    Resistor,
    VoltageSource,
)
from ..circuits.netlist import Circuit
from ..core.timescales import ShearedTimeScales
from ..signals.bitstream import BitStreamEnvelope, ConstantEnvelope, Envelope
from ..signals.stimuli import (
    DCStimulus,
    ModulatedCarrierStimulus,
    SinusoidStimulus,
    SumStimulus,
)
from ..utils.exceptions import ConfigurationError
from ..utils.validation import check_positive

__all__ = [
    "MixerCircuit",
    "DoublerCircuit",
    "default_bit_envelope",
    "ideal_multiplier_mixer",
    "unbalanced_switching_mixer",
    "balanced_lo_doubling_mixer",
    "gilbert_cell_mixer",
    "lo_frequency_doubler",
]


@dataclass(frozen=True)
class MixerCircuit:
    """A mixer netlist plus the metadata needed to drive and measure it.

    Attributes
    ----------
    circuit:
        The netlist (call ``circuit.compile()`` to obtain the MNA system).
    scales:
        The sheared time scales recommended for the MPDE solve.
    output_pos, output_neg:
        Output node names; ``output_neg`` is ``"0"`` for single-ended
        outputs.
    lo_frequency, rf_frequency:
        Drive frequencies in Hz.
    rf_amplitude:
        Peak amplitude of the RF drive (per side for differential drives),
        used by the conversion-gain metric.
    monitor_nodes:
        Additional nodes worth plotting (e.g. the doubler node of the
        balanced mixer, Fig. 5 of the paper).
    """

    circuit: Circuit
    scales: ShearedTimeScales
    output_pos: str
    output_neg: str
    lo_frequency: float
    rf_frequency: float
    rf_amplitude: float
    monitor_nodes: tuple[str, ...] = ()

    @property
    def difference_frequency(self) -> float:
        """Baseband (difference) frequency in Hz."""
        return self.scales.difference_frequency

    @property
    def difference_period(self) -> float:
        """Baseband period ``Td`` in seconds."""
        return self.scales.difference_period

    def compile(self, options=None):
        """Shorthand for ``self.circuit.compile(options)``.

        ``options`` is an optional
        :class:`~repro.utils.options.EvaluationOptions` (evaluation backend,
        kernel sharding / worker count).
        """
        return self.circuit.compile(options)


def default_bit_envelope(
    difference_period: float,
    *,
    bits: tuple[int, ...] = (1, 0, 1, 1),
    low: float = 0.25,
    high: float = 1.0,
    rise_fraction: float = 0.1,
) -> BitStreamEnvelope:
    """A bit-stream envelope whose pattern spans exactly one difference period.

    The paper's Fig. 3 / Fig. 4 show a handful of bit transitions within the
    ~0.066 ms baseband window; a four-bit pattern over one ``Td`` reproduces
    that structure while keeping the envelope periodic on the slow axis (a
    requirement of the multi-time representation).
    """
    check_positive("difference_period", difference_period)
    if len(bits) < 1:
        raise ConfigurationError("the bit pattern needs at least one bit")
    return BitStreamEnvelope(
        bits,
        bit_period=difference_period / len(bits),
        low=low,
        high=high,
        rise_fraction=rise_fraction,
    )


def _rf_stimulus(
    carrier_frequency: float,
    amplitude: float,
    envelope: Envelope | None,
    bias: float,
    phase: float,
    envelope_q: Envelope | None = None,
) -> SumStimulus | ModulatedCarrierStimulus:
    """Bias + (possibly modulated) carrier drive used by the mixer builders.

    With ``envelope_q`` set, the drive becomes a quadrature-modulated carrier

        ``A * [ I(t) * cos(w t + phase) + Q(t) * sin(w t + phase) ]``

    built as the sum of two modulated carriers 90 degrees apart
    (``cos(theta - pi/2) = sin(theta)``), which is how the scenario library
    transmits complex (QAM/PSK/OFDM) constellations through the real-valued
    mixer netlists.
    """
    carrier = ModulatedCarrierStimulus(
        amplitude=amplitude,
        carrier_frequency=carrier_frequency,
        envelope=envelope if envelope is not None else ConstantEnvelope(),
        phase=phase,
    )
    parts: list = [] if bias == 0.0 else [DCStimulus(bias)]
    parts.append(carrier)
    if envelope_q is not None:
        parts.append(
            ModulatedCarrierStimulus(
                amplitude=amplitude,
                carrier_frequency=carrier_frequency,
                envelope=envelope_q,
                phase=phase - 0.5 * math.pi,
            )
        )
    if len(parts) == 1:
        return parts[0]
    return SumStimulus(tuple(parts))


def ideal_multiplier_mixer(
    lo_frequency: float = 1.0e9,
    difference_frequency: float = 10.0e3,
    *,
    lo_amplitude: float = 1.0,
    rf_amplitude: float = 1.0,
    gain: float = 1e-3,
    load_resistance: float = 1e3,
    load_capacitance: float = 0.0,
    envelope: Envelope | None = None,
    envelope_q: Envelope | None = None,
) -> MixerCircuit:
    """Behavioural multiplier mixer (the Section 2 ideal mixing example).

    The multiplying transconductor produces ``i = gain * v_lo * v_rf`` into a
    resistive (optionally RC) load, so the output voltage is
    ``R * gain * v_lo * v_rf`` — for pure-tone drives the difference tone at
    ``fd`` has the closed-form amplitude ``R * gain * A_lo * A_rf / 2``.

    Parameters mirror the paper's example: a 1 GHz LO and a carrier 10 kHz
    below it.
    """
    check_positive("lo_frequency", lo_frequency)
    check_positive("difference_frequency", difference_frequency)
    rf_frequency = lo_frequency - difference_frequency
    if rf_frequency <= 0:
        raise ConfigurationError("difference frequency must be below the LO frequency")

    ckt = Circuit("ideal multiplier mixer")
    ckt.add(VoltageSource("vlo", "lo", ckt.GROUND, SinusoidStimulus(lo_amplitude, lo_frequency)))
    ckt.add(
        VoltageSource(
            "vrf",
            "rf",
            ckt.GROUND,
            _rf_stimulus(
                rf_frequency, rf_amplitude, envelope, bias=0.0, phase=0.0, envelope_q=envelope_q
            ),
        )
    )
    ckt.add(
        MultiplierCurrentSource(
            "mix", ckt.GROUND, "out", "lo", ckt.GROUND, "rf", ckt.GROUND, gain=gain
        )
    )
    ckt.add(Resistor("rload", "out", ckt.GROUND, load_resistance))
    if load_capacitance > 0.0:
        ckt.add(Capacitor("cload", "out", ckt.GROUND, load_capacitance))

    scales = ShearedTimeScales.from_frequencies(lo_frequency, rf_frequency, lo_multiple=1)
    return MixerCircuit(
        circuit=ckt,
        scales=scales,
        output_pos="out",
        output_neg=ckt.GROUND,
        lo_frequency=lo_frequency,
        rf_frequency=rf_frequency,
        rf_amplitude=rf_amplitude,
        monitor_nodes=("lo", "rf"),
    )


def unbalanced_switching_mixer(
    lo_frequency: float = 450.0e6,
    difference_frequency: float = 15.0e3,
    *,
    rf_amplitude: float = 0.05,
    lo_amplitude: float = 0.9,
    lo_bias: float = 0.6,
    rf_bias: float = 0.9,
    source_resistance: float = 200.0,
    load_resistance: float = 2.0e3,
    load_capacitance: float = 0.5e-12,
    envelope: Envelope | None = None,
    envelope_q: Envelope | None = None,
    mosfet_params: MOSFETParams | None = None,
) -> MixerCircuit:
    """Single-transistor switching mixer (unbalanced).

    The RF signal (a carrier ``fd`` below the LO) is applied, through a
    source resistance, to the drain of an NMOS whose gate is driven hard by
    the LO; the transistor chops the RF at the LO rate and the RC load
    collects the down-converted difference-frequency component.  The sharp
    switching makes this the simplest circuit exhibiting the waveforms the
    paper says harmonic balance handles poorly.
    """
    check_positive("lo_frequency", lo_frequency)
    check_positive("difference_frequency", difference_frequency)
    rf_frequency = lo_frequency - difference_frequency
    if rf_frequency <= 0:
        raise ConfigurationError("difference frequency must be below the LO frequency")
    params = mosfet_params or MOSFETParams(
        vto=0.5, kp=200e-6, w=40e-6, l=0.35e-6, lambda_=0.01, cgs=30e-15, cgd=30e-15
    )

    ckt = Circuit("unbalanced switching mixer")
    ckt.add(
        VoltageSource(
            "vrf",
            "rf",
            ckt.GROUND,
            _rf_stimulus(
                rf_frequency,
                rf_amplitude,
                envelope,
                bias=rf_bias,
                phase=0.0,
                envelope_q=envelope_q,
            ),
        )
    )
    ckt.add(Resistor("rs", "rf", "in", source_resistance))
    ckt.add(
        VoltageSource(
            "vlo",
            "lo",
            ckt.GROUND,
            SumStimulus((DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency))),
        )
    )
    ckt.add(NMOS("mswitch", "in", "lo", "out", params=params))
    ckt.add(Resistor("rload", "out", ckt.GROUND, load_resistance))
    ckt.add(Capacitor("cload", "out", ckt.GROUND, load_capacitance))

    scales = ShearedTimeScales.from_frequencies(lo_frequency, rf_frequency, lo_multiple=1)
    return MixerCircuit(
        circuit=ckt,
        scales=scales,
        output_pos="out",
        output_neg=ckt.GROUND,
        lo_frequency=lo_frequency,
        rf_frequency=rf_frequency,
        rf_amplitude=rf_amplitude,
        monitor_nodes=("in", "lo"),
    )


def balanced_lo_doubling_mixer(
    lo_frequency: float = 450.0e6,
    difference_frequency: float = 15.0e3,
    *,
    supply_voltage: float = 3.0,
    lo_amplitude: float = 1.0,
    lo_bias: float = 0.3,
    rf_amplitude: float = 0.15,
    rf_bias: float = 1.9,
    load_resistance: float = 2.0e3,
    load_capacitance: float = 1.0e-12,
    tail_capacitance: float = 150e-15,
    envelope: Envelope | None = None,
    envelope_q: Envelope | None = None,
    upper_params: MOSFETParams | None = None,
    lower_params: MOSFETParams | None = None,
    use_bit_stream: bool = True,
) -> MixerCircuit:
    """The paper's balanced LO-doubling down-conversion mixer (Section 3).

    Topology (adapted from Zhang, Chen & Lau, RAWCON 2000):

    * lower NMOS pair ``m3`` / ``m4``: sources grounded, gates driven by the
      differential LO at ``f1`` = 450 MHz, drains tied together at the tail
      node ``tail``.  Driven differentially, the pair's combined drain
      current contains a strong component at ``2*f1`` — the frequency
      doubler;
    * upper NMOS pair ``m1`` / ``m2``: common source at ``tail``, gates
      driven by the differential RF (a bit-stream-modulated carrier close to
      900 MHz), drains loaded by ``rl1`` / ``rl2`` to the supply.  The pair
      steers the doubled-LO tail current according to the RF input, mixing
      the two and producing the baseband difference tone at
      ``fd = 2*f1 - f2`` = 15 kHz across the differential output
      (``outp`` - ``outn``).

    With ``use_bit_stream=True`` (default) the RF carrier is modulated by the
    four-bit pattern of :func:`default_bit_envelope`, reproducing the
    bit-stream down-conversion of Figs. 3 and 4; with ``False`` the drive is
    a pure tone, which is what the conversion-gain / distortion measurements
    use.
    """
    check_positive("lo_frequency", lo_frequency)
    check_positive("difference_frequency", difference_frequency)
    rf_frequency = 2.0 * lo_frequency - difference_frequency
    if rf_frequency <= 0:
        raise ConfigurationError("difference frequency must be below twice the LO frequency")

    u_params = upper_params or MOSFETParams(
        vto=0.6, kp=170e-6, w=30e-6, l=0.35e-6, lambda_=0.03, cgs=40e-15, cgd=15e-15
    )
    l_params = lower_params or MOSFETParams(
        vto=0.6, kp=170e-6, w=20e-6, l=0.35e-6, lambda_=0.03, cgs=30e-15, cgd=10e-15
    )

    scales = ShearedTimeScales.from_frequencies(lo_frequency, rf_frequency, lo_multiple=2)

    if envelope is None and use_bit_stream:
        envelope = default_bit_envelope(scales.difference_period)
    elif envelope is None:
        envelope = ConstantEnvelope()

    ckt = Circuit("balanced LO-doubling mixer")
    # Supply and loads.
    ckt.add(VoltageSource("vdd", "vdd", ckt.GROUND, DCStimulus(supply_voltage)))
    ckt.add(Resistor("rl1", "vdd", "outp", load_resistance))
    ckt.add(Resistor("rl2", "vdd", "outn", load_resistance))
    ckt.add(Capacitor("cl1", "outp", ckt.GROUND, load_capacitance))
    ckt.add(Capacitor("cl2", "outn", ckt.GROUND, load_capacitance))

    # LO drive (differential) on the lower (doubler) pair.
    ckt.add(
        VoltageSource(
            "vlop",
            "lop",
            ckt.GROUND,
            SumStimulus((DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency))),
        )
    )
    ckt.add(
        VoltageSource(
            "vlon",
            "lon",
            ckt.GROUND,
            SumStimulus(
                (DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency, phase=math.pi))
            ),
        )
    )

    # RF drive (differential) on the upper (mixing) pair.
    ckt.add(
        VoltageSource(
            "vrfp",
            "rfp",
            ckt.GROUND,
            _rf_stimulus(
                rf_frequency,
                rf_amplitude,
                envelope,
                bias=rf_bias,
                phase=0.0,
                envelope_q=envelope_q,
            ),
        )
    )
    ckt.add(
        VoltageSource(
            "vrfn",
            "rfn",
            ckt.GROUND,
            _rf_stimulus(
                rf_frequency,
                rf_amplitude,
                envelope,
                bias=rf_bias,
                phase=math.pi,
                envelope_q=envelope_q,
            ),
        )
    )

    # Upper differential (mixing) pair.
    ckt.add(NMOS("m1", "outp", "rfp", "tail", params=u_params))
    ckt.add(NMOS("m2", "outn", "rfn", "tail", params=u_params))
    # Lower pair: the LO frequency doubler.
    ckt.add(NMOS("m3", "tail", "lop", ckt.GROUND, params=l_params))
    ckt.add(NMOS("m4", "tail", "lon", ckt.GROUND, params=l_params))
    # Parasitic capacitance at the tail (doubler) node; this node carries the
    # sharp 2*LO waveform shown in Fig. 5 of the paper.
    ckt.add(Capacitor("ctail", "tail", ckt.GROUND, tail_capacitance))

    return MixerCircuit(
        circuit=ckt,
        scales=scales,
        output_pos="outp",
        output_neg="outn",
        lo_frequency=lo_frequency,
        rf_frequency=rf_frequency,
        rf_amplitude=rf_amplitude,
        monitor_nodes=("tail", "lop", "rfp"),
    )


def gilbert_cell_mixer(
    lo_frequency: float = 450.0e6,
    difference_frequency: float = 15.0e3,
    *,
    supply_voltage: float = 5.0,
    lo_amplitude: float = 0.15,
    lo_bias: float = 3.2,
    rf_amplitude: float = 0.01,
    rf_bias: float = 2.0,
    tail_current: float = 2.0e-3,
    load_resistance: float = 1.0e3,
    load_capacitance: float = 1.0e-12,
    envelope: Envelope | None = None,
    bjt_params: BJTParams | None = None,
) -> MixerCircuit:
    """A classical bipolar Gilbert-cell (doubly balanced) down-conversion mixer.

    The Gilbert cell is the other canonical active mixer topology; it is not
    one of the paper's circuits, but it exercises the BJT model inside the
    multi-time solver and demonstrates that the difference-time-scale method
    is not specific to MOS switching mixers.  Topology:

    * lower differential pair ``q5`` / ``q6``: bases driven by the RF signal
      (a carrier ``fd`` below the LO), emitters tied to an ideal tail current
      source — the transconductance stage;
    * upper switching quad ``q1``-``q4``: bases driven by the differential
      LO, collectors cross-coupled to the two load resistors — the switching
      stage that commutates the RF current at the LO rate;
    * the difference tone at ``fd = f1 - f2`` appears across the
      differential output ``outp`` - ``outn``.

    Unlike the LO-doubling mixer of the paper, the Gilbert cell mixes with
    the LO fundamental, so ``lo_multiple = 1``.
    """
    check_positive("lo_frequency", lo_frequency)
    check_positive("difference_frequency", difference_frequency)
    rf_frequency = lo_frequency - difference_frequency
    if rf_frequency <= 0:
        raise ConfigurationError("difference frequency must be below the LO frequency")
    params = bjt_params or BJTParams(
        saturation_current=5e-16, beta_forward=120.0, beta_reverse=2.0, cje=20e-15, cjc=10e-15
    )
    scales = ShearedTimeScales.from_frequencies(lo_frequency, rf_frequency, lo_multiple=1)
    rf_envelope = envelope if envelope is not None else ConstantEnvelope()

    ckt = Circuit("gilbert cell mixer")
    ckt.add(VoltageSource("vcc", "vcc", ckt.GROUND, DCStimulus(supply_voltage)))
    ckt.add(Resistor("rl1", "vcc", "outp", load_resistance))
    ckt.add(Resistor("rl2", "vcc", "outn", load_resistance))
    ckt.add(Capacitor("cl1", "outp", ckt.GROUND, load_capacitance))
    ckt.add(Capacitor("cl2", "outn", ckt.GROUND, load_capacitance))

    # LO drive (differential) for the switching quad.
    ckt.add(
        VoltageSource(
            "vlop",
            "lop",
            ckt.GROUND,
            SumStimulus((DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency))),
        )
    )
    ckt.add(
        VoltageSource(
            "vlon",
            "lon",
            ckt.GROUND,
            SumStimulus(
                (DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency, phase=math.pi))
            ),
        )
    )
    # RF drive (differential) for the transconductance pair.
    ckt.add(
        VoltageSource(
            "vrfp",
            "rfp",
            ckt.GROUND,
            _rf_stimulus(rf_frequency, rf_amplitude, rf_envelope, bias=rf_bias, phase=0.0),
        )
    )
    ckt.add(
        VoltageSource(
            "vrfn",
            "rfn",
            ckt.GROUND,
            _rf_stimulus(rf_frequency, rf_amplitude, rf_envelope, bias=rf_bias, phase=math.pi),
        )
    )

    # Switching quad (collector, base, emitter).
    ckt.add(NPN("q1", "outp", "lop", "c1", params=params))
    ckt.add(NPN("q2", "outn", "lon", "c1", params=params))
    ckt.add(NPN("q3", "outn", "lop", "c2", params=params))
    ckt.add(NPN("q4", "outp", "lon", "c2", params=params))
    # Transconductance pair.
    ckt.add(NPN("q5", "c1", "rfp", "etail", params=params))
    ckt.add(NPN("q6", "c2", "rfn", "etail", params=params))
    # Ideal tail current source pulling the pair current to ground.
    ckt.add(CurrentSource("itail", "etail", ckt.GROUND, DCStimulus(tail_current)))

    return MixerCircuit(
        circuit=ckt,
        scales=scales,
        output_pos="outp",
        output_neg="outn",
        lo_frequency=lo_frequency,
        rf_frequency=rf_frequency,
        rf_amplitude=rf_amplitude,
        monitor_nodes=("c1", "c2", "etail"),
    )


@dataclass(frozen=True)
class DoublerCircuit:
    """A single-tone (periodic, not multi-time) RF building block.

    Returned by :func:`lo_frequency_doubler`: the netlist, the drive
    frequency, the output node, and the nodes worth plotting.  The natural
    analysis is single-period PSS (shooting or collocation) over
    ``1/lo_frequency``.
    """

    circuit: Circuit
    lo_frequency: float
    output: str
    monitor_nodes: tuple[str, ...] = ()

    @property
    def period(self) -> float:
        """The drive period ``1/f1`` (the output is dominated by ``2*f1``)."""
        return 1.0 / self.lo_frequency

    def compile(self, options=None):
        """Shorthand for ``self.circuit.compile(options)``."""
        return self.circuit.compile(options)


def lo_frequency_doubler(
    lo_frequency: float = 450.0e6,
    *,
    supply_voltage: float = 3.0,
    lo_amplitude: float = 1.0,
    lo_bias: float = 0.3,
    load_resistance: float = 2.0e3,
    load_capacitance: float | None = None,
    mosfet_params: MOSFETParams | None = None,
) -> DoublerCircuit:
    """The lower (doubler) half of the paper's balanced mixer, stood alone.

    A grounded-source NMOS pair driven by the differential LO at ``f1`` with
    drains tied at a common output node loaded to the supply: each transistor
    conducts on alternating half cycles, so the combined drain current — and
    hence the output voltage — carries a strong component at ``2*f1`` while
    the balance cancels the fundamental.  This is exactly the mechanism that
    lets the paper's Section 3 mixer down-convert a carrier near ``2*f1``,
    isolated so PSS analyses (and the scenario registry's ``frequency_doubler``
    scenario) can characterise it on its own.

    ``load_capacitance`` defaults to a time constant of 5% of the LO period
    (``0.05 / (f1 * load_resistance)``), small enough not to swamp the second
    harmonic.
    """
    check_positive("lo_frequency", lo_frequency)
    check_positive("load_resistance", load_resistance)
    if load_capacitance is None:
        load_capacitance = 0.05 / (lo_frequency * load_resistance)
    params = mosfet_params or MOSFETParams(
        vto=0.6, kp=170e-6, w=20e-6, l=0.35e-6, lambda_=0.03, cgs=30e-15, cgd=10e-15
    )

    ckt = Circuit("LO frequency doubler")
    ckt.add(VoltageSource("vdd", "vdd", ckt.GROUND, DCStimulus(supply_voltage)))
    ckt.add(Resistor("rload", "vdd", "out", load_resistance))
    ckt.add(Capacitor("cload", "out", ckt.GROUND, load_capacitance))
    ckt.add(
        VoltageSource(
            "vlop",
            "lop",
            ckt.GROUND,
            SumStimulus((DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency))),
        )
    )
    ckt.add(
        VoltageSource(
            "vlon",
            "lon",
            ckt.GROUND,
            SumStimulus(
                (DCStimulus(lo_bias), SinusoidStimulus(lo_amplitude, lo_frequency, phase=math.pi))
            ),
        )
    )
    ckt.add(NMOS("m3", "out", "lop", ckt.GROUND, params=params))
    ckt.add(NMOS("m4", "out", "lon", ckt.GROUND, params=params))

    return DoublerCircuit(
        circuit=ckt,
        lo_frequency=lo_frequency,
        output="out",
        monitor_nodes=("lop", "lon"),
    )
