"""RF metrics: conversion gain, distortion, ISI / eye opening, feedthrough.

All metrics operate on the *baseband envelope* extracted from an MPDE
solution (or on any :class:`~repro.signals.waveform.Waveform` obtained by
other means), so they can be applied equally to the multi-time results and
to brute-force transient references — which is how the tests validate them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.solver import MPDEResult
from ..signals.spectrum import fourier_coefficient, total_harmonic_distortion
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError
from ..utils.validation import check_positive

__all__ = [
    "ConversionMetrics",
    "conversion_gain",
    "conversion_metrics",
    "baseband_distortion",
    "eye_opening",
    "lo_feedthrough_ratio",
    "adjacent_channel_power_ratio",
]


@dataclass(frozen=True)
class ConversionMetrics:
    """Summary of a pure-tone down-conversion measurement.

    Attributes
    ----------
    gain:
        Voltage conversion gain (baseband amplitude / RF drive amplitude).
    gain_db:
        The same in dB.
    baseband_amplitude:
        Peak amplitude of the difference-frequency component at the output.
    distortion:
        Total harmonic distortion of the baseband waveform (ratio).
    """

    gain: float
    gain_db: float
    baseband_amplitude: float
    distortion: float


def _baseband_component(envelope: Waveform, difference_frequency: float) -> float:
    """Peak amplitude of the ``fd`` component of a baseband waveform."""
    return 2.0 * abs(fourier_coefficient(envelope, difference_frequency))


def conversion_gain(
    envelope: Waveform, difference_frequency: float, rf_amplitude: float
) -> float:
    """Voltage down-conversion gain from a baseband envelope.

    ``gain = A_baseband(fd) / A_rf`` where the baseband amplitude is the
    Fourier component of the envelope at the difference frequency.
    """
    check_positive("difference_frequency", difference_frequency)
    check_positive("rf_amplitude", rf_amplitude)
    return _baseband_component(envelope, difference_frequency) / rf_amplitude


def baseband_distortion(
    envelope: Waveform, difference_frequency: float, *, n_harmonics: int = 5
) -> float:
    """THD of the baseband waveform relative to its ``fd`` fundamental."""
    check_positive("difference_frequency", difference_frequency)
    return total_harmonic_distortion(envelope, difference_frequency, n_harmonics=n_harmonics)


def conversion_metrics(
    result: MPDEResult,
    output_pos: str,
    output_neg: str | None,
    rf_amplitude: float,
    *,
    n_harmonics: int = 5,
) -> ConversionMetrics:
    """Conversion gain and distortion from an MPDE solution (pure-tone drive).

    The baseband envelope is the LO-cycle average of the (differential)
    output along the difference-frequency axis; its component at ``fd``
    divided by the RF amplitude is the conversion gain, and the higher
    harmonics of ``fd`` give the distortion — the "down-conversion gain and
    distortion figures" the paper obtains from pure-tone excitations.
    """
    check_positive("rf_amplitude", rf_amplitude)
    fd = result.scales.difference_frequency
    envelope = result.baseband_envelope(output_pos, node_neg=output_neg, mode="mean")
    amplitude = _baseband_component(envelope, fd)
    gain = amplitude / rf_amplitude
    if gain <= 0.0:
        raise AnalysisError("no baseband component found at the difference frequency")
    distortion = total_harmonic_distortion(envelope, fd, n_harmonics=n_harmonics)
    return ConversionMetrics(
        gain=gain,
        gain_db=20.0 * math.log10(gain),
        baseband_amplitude=amplitude,
        distortion=distortion,
    )


def eye_opening(envelope: Waveform, bit_period: float, *, n_bits: int | None = None) -> float:
    """Normalised eye opening of a down-converted bit stream.

    The envelope is sampled at the centre of each bit slot; the eye opening
    is the gap between the lowest "high" sample and the highest "low" sample
    (splitting samples at their midrange), normalised by the overall swing.
    1.0 means a fully open eye, 0.0 (or negative) a closed one — a compact
    ISI summary, which the paper lists as a target application of the
    method.
    """
    check_positive("bit_period", bit_period)
    duration = envelope.duration
    if n_bits is None:
        n_bits = int(round(duration / bit_period))
    if n_bits < 2:
        raise AnalysisError("eye_opening needs at least 2 bit slots within the envelope")
    t0 = envelope.times[0]
    centres = t0 + (np.arange(n_bits) + 0.5) * bit_period
    centres = centres[centres <= envelope.times[-1] + 1e-15]
    samples = np.asarray(envelope(centres), dtype=float)
    swing = float(np.max(samples) - np.min(samples))
    if swing <= 0.0:
        return 0.0
    midrange = 0.5 * (np.max(samples) + np.min(samples))
    highs = samples[samples >= midrange]
    lows = samples[samples < midrange]
    if highs.size == 0 or lows.size == 0:
        return 0.0
    return float((np.min(highs) - np.max(lows)) / swing)


def lo_feedthrough_ratio(result: MPDEResult, output_pos: str, output_neg: str | None = None) -> float:
    """Residual carrier ripple relative to the baseband swing at the output.

    Computed as the mean peak-to-peak variation over the LO cycle divided by
    the peak-to-peak baseband envelope; small values mean the output is a
    clean baseband waveform.
    """
    if output_neg is None:
        surface = result.bivariate(output_pos)
    else:
        surface = result.bivariate_differential(output_pos, output_neg)
    ripple = float(np.mean(surface.values.max(axis=0) - surface.values.min(axis=0)))
    envelope = surface.envelope_mean()
    swing = envelope.peak_to_peak()
    if swing <= 0.0:
        return math.inf if ripple > 0.0 else 0.0
    return ripple / swing


def adjacent_channel_power_ratio(
    envelope: Waveform,
    channel_frequency: float,
    channel_bandwidth: float,
    adjacent_offset: float,
) -> float:
    """Adjacent-channel interference (ACI) estimate from the baseband envelope.

    Power in the band ``[f_adj - B/2, f_adj + B/2]`` (with
    ``f_adj = channel_frequency + adjacent_offset``) relative to the power in
    the wanted channel ``[f_ch - B/2, f_ch + B/2]``, both computed by direct
    Fourier projection of the envelope.  Returned as a linear power ratio
    (use ``10*log10`` for dBc).
    """
    check_positive("channel_frequency", channel_frequency)
    check_positive("channel_bandwidth", channel_bandwidth)
    check_positive("adjacent_offset", adjacent_offset)

    def band_power(f_center: float) -> float:
        # Project onto a few in-band frequencies (the envelope is periodic,
        # so its spectrum is discrete with spacing 1/duration).
        spacing = 1.0 / envelope.duration
        f_lo = max(spacing, f_center - 0.5 * channel_bandwidth)
        f_hi = f_center + 0.5 * channel_bandwidth
        k_lo = int(np.ceil(f_lo / spacing))
        k_hi = int(np.floor(f_hi / spacing))
        power = 0.0
        for k in range(k_lo, k_hi + 1):
            amp = 2.0 * abs(fourier_coefficient(envelope, k * spacing))
            power += amp**2 / 2.0
        return power

    wanted = band_power(channel_frequency)
    adjacent = band_power(channel_frequency + adjacent_offset)
    if wanted <= 0.0:
        raise AnalysisError("no power found in the wanted channel")
    return adjacent / wanted
