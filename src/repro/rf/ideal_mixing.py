"""The ideal mixing example of Section 2 of the paper.

The paper introduces difference time scales with the ideal multiplication

    z(t) = x(t) * y(t),   x(t) = cos(2*pi*f1*t),  y(t) = cos(2*pi*f2*t)

with ``f1 = 1 GHz`` and ``f2 = f1 - 10 kHz``.  Two bivariate representations
of ``z`` are compared:

* ``z_hat1(t1, t2) = cos(2*pi*f1*t1) * cos(2*pi*f2*t2)`` — the "natural"
  (unsheared) choice, periodic with two nearly equal nanosecond periods,
  which hides the 10 kHz difference tone (Fig. 1);
* ``z_hat2(t1, t2) = z_s(f1*t1, f1*t1 - fd*t2)`` — the scaled-and-sheared
  choice with ``fd = f1 - f2``, periodic in ``t2`` with the 0.1 ms
  difference period, which exposes the difference-frequency variation
  explicitly (Fig. 2).

Both satisfy ``z(t) = z_hat(t, t)``.  The helpers here sample the two
surfaces for the Fig. 1 / Fig. 2 reproduction and provide the closed-form
ideal product for validation.
"""

from __future__ import annotations

import numpy as np

from ..core.timescales import ShearedTimeScales, UnshearedTimeScales
from ..signals.tones import TonePair
from ..signals.waveform import BivariateWaveform, Waveform
from ..utils.exceptions import ConfigurationError

__all__ = [
    "scaled_bivariate_product",
    "zhat_unsheared",
    "zhat_sheared",
    "ideal_product_waveform",
    "difference_tone_amplitude",
]


def scaled_bivariate_product(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """The normalised bivariate product ``z_s(u1, u2) = cos(2*pi*u1) * cos(2*pi*u2)``.

    This is Eq. (8) of the paper: both arguments are in *cycles* (period 1).
    """
    return np.cos(2.0 * np.pi * np.asarray(u1, dtype=float)) * np.cos(
        2.0 * np.pi * np.asarray(u2, dtype=float)
    )


def zhat_unsheared(pair: TonePair, n_fast: int = 64, n_slow: int = 64) -> BivariateWaveform:
    """Sample the unsheared representation ``z_hat1`` (Fig. 1 of the paper).

    The first axis spans one period of ``f1``, the second one period of
    ``f2``; for closely spaced tones the two spans are almost identical and
    nothing slow is visible.
    """
    if n_fast < 2 or n_slow < 2:
        raise ConfigurationError("zhat grids need at least 2 samples per axis")
    scales = UnshearedTimeScales.from_frequencies(pair.f1, pair.f2)
    t1 = np.arange(n_fast) * (scales.fast_period / n_fast)
    t2 = np.arange(n_slow) * (scales.difference_period / n_slow)
    u1 = pair.f1 * t1[:, None]
    u2 = pair.f2 * t2[None, :]
    values = pair.lo.amplitude * pair.rf.amplitude * scaled_bivariate_product(u1, u2)
    return BivariateWaveform(
        values=values,
        period1=scales.fast_period,
        period2=scales.difference_period,
        name="zhat1",
    )


def zhat_sheared(pair: TonePair, n_fast: int = 64, n_slow: int = 64) -> BivariateWaveform:
    """Sample the sheared representation ``z_hat2`` (Fig. 2 of the paper).

    The first axis spans one LO period, the second one *difference-frequency*
    period ``Td = 1 / |k*f1 - f2|``; the slow variation of the product is
    explicit along the second axis.
    """
    if n_fast < 2 or n_slow < 2:
        raise ConfigurationError("zhat grids need at least 2 samples per axis")
    scales = ShearedTimeScales.from_tone_pair(pair)
    t1 = np.arange(n_fast) * (scales.fast_period / n_fast)
    t2 = np.arange(n_slow) * (scales.difference_period / n_slow)
    t1_mesh, t2_mesh = np.meshgrid(t1, t2, indexing="ij")
    u1 = pair.lo_multiple * scales.fast_phase(t1_mesh)
    u2 = scales.carrier_phase(t1_mesh, t2_mesh)
    values = pair.lo.amplitude * pair.rf.amplitude * scaled_bivariate_product(u1, u2)
    return BivariateWaveform(
        values=values,
        period1=scales.fast_period,
        period2=scales.difference_period,
        name="zhat2",
    )


def ideal_product_waveform(pair: TonePair, times: np.ndarray) -> Waveform:
    """The exact one-time product ``z(t) = x(t) * y(t)`` sampled at ``times``.

    Note that for the LO-doubling case (``lo_multiple = 2``) the "LO" factor
    is the internally doubled tone ``cos(2*pi*2*f1*t)``; the difference tone
    then appears at ``|2*f1 - f2|`` exactly as in the balanced mixer.
    """
    times = np.asarray(times, dtype=float)
    lo_factor = pair.lo.amplitude * np.cos(2.0 * np.pi * pair.lo_multiple * pair.f1 * times)
    rf_factor = pair.rf.amplitude * np.cos(2.0 * np.pi * pair.f2 * times)
    return Waveform(times, lo_factor * rf_factor, name="z")


def difference_tone_amplitude(pair: TonePair) -> float:
    """Closed-form amplitude of the difference tone of the ideal product.

    ``cos(a) * cos(b) = (cos(a-b) + cos(a+b)) / 2``, so the difference tone
    has amplitude ``A_lo * A_rf / 2`` — the analytic value the tests compare
    the extracted envelope against.
    """
    return 0.5 * pair.lo.amplitude * pair.rf.amplitude
