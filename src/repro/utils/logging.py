"""Lightweight logging helpers.

The library uses the standard :mod:`logging` module with a package-level
logger namespace (``repro.*``).  Analyses log convergence summaries at INFO
and per-iteration detail at DEBUG.  ``configure_logging`` is a convenience
for scripts and benchmarks; library code never configures handlers itself.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "configure_logging", "timed"]

_PACKAGE_LOGGER = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` may be a bare suffix (``"mpde"``) or a fully qualified module
    name (``"repro.core.mpde"``); both map to the same logger.
    """
    if name.startswith(_PACKAGE_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{_PACKAGE_LOGGER}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Install a simple stderr handler for the package logger.

    Intended for examples and benchmarks.  Calling it twice does not add a
    second handler.
    """
    logger = logging.getLogger(_PACKAGE_LOGGER)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)


@contextmanager
def timed(logger: logging.Logger, label: str) -> Iterator[dict]:
    """Context manager that logs the wall-clock duration of a block.

    Yields a dict whose ``"seconds"`` entry is filled in on exit so callers
    can also record the measured time programmatically.
    """
    record: dict = {"seconds": None}
    start = time.perf_counter()
    try:
        yield record
    finally:
        record["seconds"] = time.perf_counter() - start
        logger.info("%s took %.3f s", label, record["seconds"])
