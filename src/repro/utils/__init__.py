"""Shared utilities: exceptions, option bundles, logging and validation."""

from .exceptions import (
    AnalysisError,
    CircuitError,
    ConfigurationError,
    ConvergenceError,
    DeviceError,
    MPDEError,
    NodeError,
    ReproError,
    ShearError,
    SingularMatrixError,
    WaveformError,
)
from .logging import configure_logging, get_logger, timed
from .options import (
    ContinuationOptions,
    EvaluationOptions,
    HarmonicBalanceOptions,
    MPDEOptions,
    NewtonOptions,
    ShootingOptions,
    TransientOptions,
    options_from_mapping,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CircuitError",
    "NodeError",
    "DeviceError",
    "AnalysisError",
    "ConvergenceError",
    "SingularMatrixError",
    "MPDEError",
    "ShearError",
    "WaveformError",
    "EvaluationOptions",
    "NewtonOptions",
    "ContinuationOptions",
    "TransientOptions",
    "ShootingOptions",
    "HarmonicBalanceOptions",
    "MPDEOptions",
    "options_from_mapping",
    "get_logger",
    "configure_logging",
    "timed",
]
