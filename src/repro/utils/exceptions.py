"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream code can catch library failures without
also swallowing programming errors (``TypeError`` and friends propagate
untouched).

The hierarchy mirrors the package layout:

* netlist / device construction problems raise :class:`CircuitError` (or the
  more specific :class:`DeviceError` / :class:`NodeError`),
* numerical analyses raise :class:`AnalysisError`, with
  :class:`ConvergenceError` reserved for iterations that ran out of budget and
  :class:`SingularMatrixError` for structurally or numerically singular
  linearisations,
* the multi-time (MPDE) core raises :class:`MPDEError`, with
  :class:`ShearError` flagging invalid difference-frequency time-scale maps.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An option bundle or solver configuration is inconsistent."""


class CircuitError(ReproError):
    """A netlist could not be built or compiled into an MNA system."""


class NodeError(CircuitError):
    """A node reference is unknown, duplicated, or otherwise invalid."""


class DeviceError(CircuitError):
    """A device was constructed with invalid parameters or connections."""


class AnalysisError(ReproError):
    """An analysis (DC, transient, shooting, HB, ...) failed."""


class ConvergenceError(AnalysisError):
    """An iterative method exhausted its iteration budget without converging.

    Parameters
    ----------
    message:
        Human readable description of the failure.
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Norm of the residual at the last iterate, if available.
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int | None = None,
        residual_norm: float | None = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class SingularMatrixError(AnalysisError):
    """A linear system produced by an analysis is singular.

    Typically indicates a floating node, a loop of ideal voltage sources, or a
    device stamped with degenerate parameters.
    """


class MPDEError(ReproError):
    """The multi-time (MPDE) core failed to build or solve a problem."""


class ShearError(MPDEError):
    """A difference-frequency time-scale (shear) specification is invalid."""


class WaveformError(ReproError):
    """A waveform container was used inconsistently (size/axis mismatch)."""
