"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream code can catch library failures without
also swallowing programming errors (``TypeError`` and friends propagate
untouched).

The hierarchy mirrors the package layout:

* netlist / device construction problems raise :class:`CircuitError` (or the
  more specific :class:`DeviceError` / :class:`NodeError`),
* numerical analyses raise :class:`AnalysisError`, with
  :class:`ConvergenceError` reserved for iterations that ran out of budget,
  :class:`SingularMatrixError` for structurally or numerically singular
  linearisations, :class:`GMRESStagnationError` for Krylov solves that made
  no progress over a restart cycle (a *stuck* solve, as opposed to a merely
  *slow* one) and :class:`DeadlineExceededError` for solves cut off by a
  cooperative per-solve deadline,
* the multi-time (MPDE) core raises :class:`MPDEError`, with
  :class:`ShearError` flagging invalid difference-frequency time-scale maps.

Terminal solve failures may carry a structured
:class:`~repro.resilience.diagnostics.FailureDiagnostics` payload on their
``diagnostics`` attribute (``None`` when no localisation was possible) —
see :mod:`repro.resilience`.  Deadline expiries and exhausted-ladder
failures of checkpointing solves additionally carry the latest
crash-consistent :class:`~repro.resilience.checkpoint.SolveCheckpoint` on
their ``checkpoint`` attribute, so callers can resume instead of restarting
from zero; :class:`CheckpointError` flags checkpoints that cannot be
trusted (corrupt file, fingerprint mismatch).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library.

    ``diagnostics`` is an optional structured-failure payload
    (:class:`~repro.resilience.diagnostics.FailureDiagnostics`) attached by
    the resilience layer on terminal solve failures.  ``checkpoint`` is an
    optional :class:`~repro.resilience.checkpoint.SolveCheckpoint` attached
    by checkpointing solves so the failed work can be resumed.
    """

    diagnostics = None
    checkpoint = None


class ConfigurationError(ReproError):
    """An option bundle or solver configuration is inconsistent."""


class CircuitError(ReproError):
    """A netlist could not be built or compiled into an MNA system."""


class NodeError(CircuitError):
    """A node reference is unknown, duplicated, or otherwise invalid."""


class DeviceError(CircuitError):
    """A device was constructed with invalid parameters or connections."""


class AnalysisError(ReproError):
    """An analysis (DC, transient, shooting, HB, ...) failed."""


class ConvergenceError(AnalysisError):
    """An iterative method exhausted its iteration budget without converging.

    Parameters
    ----------
    message:
        Human readable description of the failure.
    iterations:
        Number of iterations performed before giving up.
    residual_norm:
        Norm of the residual at the last iterate, if available.
    """

    def __init__(
        self,
        message: str,
        *,
        iterations: int | None = None,
        residual_norm: float | None = None,
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm


class SingularMatrixError(AnalysisError):
    """A linear system produced by an analysis is singular.

    Typically indicates a floating node, a loop of ideal voltage sources, or a
    device stamped with degenerate parameters.
    """


class GMRESStagnationError(SingularMatrixError):
    """A GMRES solve made essentially no progress over a whole restart cycle.

    Distinguishes a *stuck* Krylov solve (no-progress: the preconditioned
    residual barely moved across the last restart cycle, so more iterations
    would not help) from a merely *slow* one that ran out of ``maxiter``
    while still converging.  Subclasses :class:`SingularMatrixError` so
    existing failure handling keeps working; the recovery ladder classifies
    the two differently (a stagnated solve wants a preconditioner downgrade
    or refresh, a slow one wants a larger budget).
    """


class DeadlineExceededError(AnalysisError):
    """A cooperative per-solve deadline expired before the solve finished.

    Raised at Newton / GMRES iteration boundaries (never mid-factorisation),
    so the work completed before the deadline is accounted for in
    ``partial_stats``.

    Parameters
    ----------
    message:
        Human readable description.
    deadline_s:
        The configured deadline in seconds.
    elapsed_s:
        Wall time elapsed when the deadline fired.
    stage:
        Name of the solve stage that observed the expiry (e.g. ``"newton"``,
        ``"gmres"``, ``"continuation"``, ``"recovery"``).
    partial_stats:
        Whatever statistics object the failing solve had accumulated so far
        (an :class:`~repro.core.solver.MPDEStats` for MPDE solves), or
        ``None``.
    checkpoint:
        The latest crash-consistent
        :class:`~repro.resilience.checkpoint.SolveCheckpoint` the failing
        solve recorded (``None`` for non-checkpointing solves) — pass it
        back as ``resume_from=`` to continue from the interrupted iterate
        instead of restarting from zero.
    """

    def __init__(
        self,
        message: str,
        *,
        deadline_s: float | None = None,
        elapsed_s: float | None = None,
        stage: str = "",
        partial_stats=None,
        checkpoint=None,
    ) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.stage = stage
        self.partial_stats = partial_stats
        self.checkpoint = checkpoint


class CheckpointError(ReproError):
    """A solve checkpoint could not be loaded, validated, or resumed.

    Raised when a persisted checkpoint file is unreadable or corrupt (torn
    writes cannot happen — persistence is write-temporary + atomic rename —
    but truncation or tampering after the fact can), and when a
    checkpoint's problem fingerprint does not match the solve it is being
    resumed into (different circuit, grid, discretisation or solver
    configuration).  Resuming a mismatched checkpoint would converge — to
    the *wrong problem's* answer — so the mismatch is an error, never a
    warning.
    """


class ServiceError(ReproError):
    """The simulation service could not accept, run, or finish a request.

    Base class of the service layer's structured failures: admission
    rejections (:class:`ServiceOverloadedError`), retryable infrastructure
    trouble (:class:`TransientServiceError`), and terminal job outcomes the
    caller observes through ``Job.result()`` (cancelled / shed / shut-down
    requests).
    """


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: the service queue is full.

    Raised *synchronously* by ``SimulationService.submit`` — load shedding
    is structured and immediate, never a silently unbounded queue.  The
    caller can back off and resubmit.

    Parameters
    ----------
    message:
        Human readable description.
    queue_depth:
        Number of requests queued when the submission was rejected.
    capacity:
        The configured queue capacity.
    retry_after_s:
        Suggested client backoff before resubmitting (an estimate from the
        service's recent per-job latency), or ``None`` when the service has
        completed nothing yet.
    """

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        capacity: int | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.capacity = capacity
        self.retry_after_s = retry_after_s


class TransientServiceError(ServiceError):
    """A retryable service-infrastructure failure (cache build, dispatch).

    Models trouble *around* a solve rather than inside it — a compiled-
    circuit cache build that died, a dispatch hiccup.  Classified as the
    ``"service"`` failure kind, which the job layer's retry budget treats
    as retryable; the fault-injection service profiles raise this type.
    """


class MPDEError(ReproError):
    """The multi-time (MPDE) core failed to build or solve a problem."""


class ShearError(MPDEError):
    """A difference-frequency time-scale (shear) specification is invalid."""


class WaveformError(ReproError):
    """A waveform container was used inconsistently (size/axis mismatch)."""
