"""Small argument-validation helpers used across the package.

These helpers keep device models and analyses free of repetitive
``if ... raise`` boilerplate while producing consistent error messages.
They raise :class:`~repro.utils.exceptions.ReproError` subclasses so library
callers can distinguish user errors from internal bugs.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from .exceptions import ConfigurationError, WaveformError

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_finite",
    "check_in",
    "check_vector",
    "check_same_length",
    "as_float_array",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ConfigurationError``."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` if >= 0 and finite, else raise ``ConfigurationError``."""
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_finite(name: str, value: float) -> float:
    """Return ``value`` if finite, else raise ``ConfigurationError``."""
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Return ``value`` if it is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ConfigurationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def as_float_array(name: str, values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Convert ``values`` to a 1-D float array, raising ``WaveformError`` on failure."""
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise WaveformError(f"{name} could not be converted to a float array") from exc
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise WaveformError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise WaveformError(f"{name} contains non-finite entries")
    return arr


def check_vector(name: str, values: np.ndarray, size: int) -> np.ndarray:
    """Check that ``values`` is a 1-D float vector of length ``size``."""
    arr = np.asarray(values, dtype=float)
    if arr.shape != (size,):
        raise WaveformError(
            f"{name} must have shape ({size},), got {arr.shape}"
        )
    return arr


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise ``WaveformError`` unless ``a`` and ``b`` have the same length."""
    if len(a) != len(b):
        raise WaveformError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have the same length"
        )
