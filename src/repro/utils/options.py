"""Option bundles shared by the numerical analyses.

The simulator keeps its tunable knobs in small frozen dataclasses rather than
loose keyword arguments so that

* the defaults are documented in one place,
* option bundles can be passed through several layers (driver -> analysis ->
  Newton loop) without each layer re-declaring every knob, and
* tests can assert on the exact configuration used by an analysis.

All bundles validate themselves on construction and raise
:class:`~repro.utils.exceptions.ConfigurationError` for inconsistent values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .exceptions import ConfigurationError

__all__ = [
    "EvaluationOptions",
    "NewtonOptions",
    "ContinuationOptions",
    "RecoveryPolicy",
    "RestartPolicy",
    "TransientOptions",
    "ShootingOptions",
    "HarmonicBalanceOptions",
    "MPDEOptions",
    "EVALUATION_BACKENDS",
    "FACTOR_BACKENDS",
    "KERNEL_BACKENDS",
    "PRECONDITIONER_KINDS",
    "RECOVERY_RUNGS",
]

#: The canonical preconditioner mode names.  Defined here (the bottom of the
#: import graph) so the option validation, the
#: :mod:`repro.linalg.preconditioners` factory and the analysis front ends
#: all share one source of truth.
PRECONDITIONER_KINDS = ("ilu", "block_circulant", "block_circulant_fast", "jacobi", "none")

#: Device-evaluation backends of :class:`~repro.circuits.mna.MNASystem`:
#: ``"batched"`` routes stamps through the compiled gather/compute/scatter
#: engine (:mod:`repro.circuits.engine`), ``"loop"`` is the per-device
#: reference path the engine is property-tested against.
EVALUATION_BACKENDS = ("batched", "loop")

#: Kernel execution backends of the batched engine (the parallel execution
#: layer, :mod:`repro.parallel`): ``"serial"`` runs the class kernels in the
#: calling process, ``"sharded"`` splits the ``P`` grid-point axis across a
#: pool of forked worker processes (bit-for-bit equal to serial; falls back
#: to serial with a recorded reason when the environment cannot shard).
#: Defined here (the bottom of the import graph) so the option validation
#: and :mod:`repro.parallel.backends` share one source of truth.
KERNEL_BACKENDS = ("serial", "sharded")

#: How ``parallel=True`` factors (and applies) the per-slow-harmonic LUs of
#: the ``"block_circulant_fast"`` preconditioner: ``"threads"`` batch-factors
#: eagerly on an in-process thread pool (the factors live in the parent and
#: applies run serially there); ``"resident"`` keeps the factors *in forked
#: worker processes* — each worker owns a contiguous slice of the harmonics,
#: factors it from shared-memory copies of the base matrices, and serves
#: batched back-substitutions so one preconditioner apply becomes one
#: broadcast (FFT in the parent, per-harmonic solves in parallel in the
#: workers, IFFT in the parent).  Bit-for-bit equal either way.  Defined here
#: (the bottom of the import graph) so option validation and
#: :mod:`repro.parallel.factor_service` share one source of truth.
FACTOR_BACKENDS = ("threads", "resident")

#: The canonical recovery-ladder rung names, in default escalation order.
#: Defined here (the bottom of the import graph) so :class:`RecoveryPolicy`
#: validation and the ladder driver in :mod:`repro.core.solver` share one
#: source of truth.  See ``docs/resilience.md`` for what each rung does.
RECOVERY_RUNGS = (
    "newton_refresh",
    "damping",
    "preconditioner_downgrade",
    "continuation",
    "guess_retry",
)


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def _require_nonnegative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


def _require_in(name: str, value: Any, allowed: tuple[Any, ...]) -> None:
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {allowed!r}, got {value!r}"
        )


@dataclass(frozen=True)
class RestartPolicy:
    """Controls for supervised self-healing of the forked worker pools.

    Both worker pools — the sharded evaluation pool and the resident factor
    service — hand their failure paths to a
    :class:`~repro.resilience.supervisor.PoolSupervisor` driven by this
    policy: on a crash/hang the pool is torn down, restarted after an
    exponential backoff, health-probed for bit-for-bit parity, and only
    disabled *stickily* (serial for the rest of the process) once the
    restart budget is exhausted.  Every step lands on
    ``MPDEStats.supervisor_trace``.

    Attributes
    ----------
    max_restarts:
        Restart budget per pool lifetime (not per solve — a flapping worker
        must not grind a long solve into endless restart cycles).  ``0``
        restores the pre-supervision behaviour: the first failure disables
        the parallel path permanently.
    backoff_base_s:
        Backoff before the first restart attempt; attempt ``k`` sleeps
        ``min(backoff_base_s * 2**(k - 1), backoff_cap_s)``.
    backoff_cap_s:
        Ceiling on the exponential backoff.
    health_probe:
        Run the cheap parity probe before re-admitting a restarted pool to
        the solve path.  Leave on: a restarted-but-broken pool that skipped
        its probe could corrupt results silently.
    """

    max_restarts: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    health_probe: bool = True

    def __post_init__(self) -> None:
        _require_nonnegative("max_restarts", self.max_restarts)
        _require_nonnegative("backoff_base_s", self.backoff_base_s)
        _require_nonnegative("backoff_cap_s", self.backoff_cap_s)
        if self.backoff_cap_s < self.backoff_base_s:
            raise ConfigurationError(
                f"backoff_cap_s ({self.backoff_cap_s!r}) must be >= "
                f"backoff_base_s ({self.backoff_base_s!r})"
            )

    def backoff_s(self, attempt: int) -> float:
        """Backoff (seconds) before 1-based restart ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_base_s * 2.0 ** (attempt - 1), self.backoff_cap_s)

    def with_(self, **changes: Any) -> "RestartPolicy":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class EvaluationOptions:
    """Controls for circuit-equation evaluation (``Circuit.compile``).

    Attributes
    ----------
    evaluation_backend:
        ``"batched"`` (default) evaluates device stamps through the
        compile-time batched engine — devices grouped by class, one
        vectorised kernel per group, no per-device Python dispatch.
        ``"loop"`` is the per-device reference path; the two are bit-for-bit
        equal (property-tested) so the knob only trades speed, never
        results.
    kernel_backend:
        Execution backend of the batched engine's class kernels (the
        parallel layer, :mod:`repro.parallel`): ``"serial"`` (default) runs
        them in the calling process; ``"sharded"`` splits the ``P``
        grid-point axis across a pool of forked worker processes sharing the
        compiled engine, bit-for-bit equal to serial.  Sharding degrades
        gracefully: on environments that cannot shard (single CPU with auto
        worker count, no ``fork`` start method) or when a worker fails, the
        system falls back to the serial path and records the reason
        (``MNASystem.parallel_fallback_reason``).  Ignored by the ``"loop"``
        evaluation backend.
    n_workers:
        Worker-process count for the sharded backend.  ``None`` (default)
        auto-sizes from the usable CPU count — and resolves to serial on a
        single-CPU machine; an explicit count >= 2 is honoured wherever
        ``fork`` exists, ``1`` explicitly selects the serial path.
    worker_timeout_s:
        Watchdog deadline (seconds) on every reply read from a sharded
        worker.  A worker that does not answer within the timeout is treated
        as hung: the pool is torn down (``terminate()`` escalating to
        ``kill()``), shared memory is released, and the evaluation retries
        on the serial path with the reason recorded in
        ``MNASystem.parallel_fallback_reason``.  ``None`` disables the
        watchdog (blocking reads, pre-watchdog behaviour).
    restart:
        :class:`RestartPolicy` driving the supervised self-healing of the
        sharded worker pool: a failed pool is restarted with exponential
        backoff and parity-probed before re-admission; only an exhausted
        restart budget disables sharding stickily.
        ``RestartPolicy(max_restarts=0)`` restores the pre-supervision
        first-failure-disables behaviour.
    """

    evaluation_backend: str = "batched"
    kernel_backend: str = "serial"
    n_workers: int | None = None
    worker_timeout_s: float | None = 120.0
    restart: RestartPolicy = field(default_factory=RestartPolicy)

    def __post_init__(self) -> None:
        _require_in("evaluation_backend", self.evaluation_backend, EVALUATION_BACKENDS)
        _require_in("kernel_backend", self.kernel_backend, KERNEL_BACKENDS)
        if self.n_workers is not None:
            _require_positive("n_workers", self.n_workers)
        if self.worker_timeout_s is not None:
            _require_positive("worker_timeout_s", self.worker_timeout_s)
        if not isinstance(self.restart, RestartPolicy):
            raise ConfigurationError(
                f"restart must be a RestartPolicy, got {type(self.restart).__name__}"
            )


@dataclass(frozen=True)
class NewtonOptions:
    """Controls for damped Newton-Raphson iterations.

    Attributes
    ----------
    max_iterations:
        Iteration budget before a :class:`ConvergenceError` is raised.
    abstol:
        Absolute tolerance on the residual norm (per equation).
    reltol:
        Relative tolerance on the Newton update compared to the iterate.
    damping:
        Initial damping factor applied to the Newton step (1.0 = full step).
    min_damping:
        Smallest damping factor the line search may fall back to.
    max_step_norm:
        If finite, Newton updates with a larger infinity norm are scaled
        back to this value (simple trust-region safeguard, useful for
        exponential device models).
    check_every:
        Residual/update convergence is evaluated every iteration; this knob
        exists for compatibility with tests that want to slow down checking.
    """

    max_iterations: int = 60
    abstol: float = 1e-9
    reltol: float = 1e-6
    damping: float = 1.0
    min_damping: float = 1.0 / 1024.0
    max_step_norm: float = float("inf")
    check_every: int = 1

    def __post_init__(self) -> None:
        _require_positive("max_iterations", self.max_iterations)
        _require_positive("abstol", self.abstol)
        _require_positive("reltol", self.reltol)
        _require_positive("damping", self.damping)
        _require_positive("min_damping", self.min_damping)
        _require_positive("max_step_norm", self.max_step_norm)
        _require_positive("check_every", self.check_every)
        if self.damping > 1.0:
            raise ConfigurationError("damping must be <= 1.0")
        if self.min_damping > self.damping:
            raise ConfigurationError("min_damping must be <= damping")

    def with_(self, **changes: Any) -> "NewtonOptions":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ContinuationOptions:
    """Controls for source-stepping / gmin-stepping homotopy.

    The continuation driver sweeps an embedding parameter ``lambda`` from
    ``lambda_start`` to 1.0, solving a Newton problem at each value and using
    the previous solution as the initial guess for the next.
    """

    lambda_start: float = 0.0
    initial_step: float = 0.25
    min_step: float = 1e-5
    max_step: float = 0.5
    growth: float = 2.0
    shrink: float = 0.25
    max_steps: int = 200

    def __post_init__(self) -> None:
        _require_nonnegative("lambda_start", self.lambda_start)
        if self.lambda_start >= 1.0:
            raise ConfigurationError("lambda_start must be < 1.0")
        _require_positive("initial_step", self.initial_step)
        _require_positive("min_step", self.min_step)
        _require_positive("max_step", self.max_step)
        if self.min_step > self.max_step:
            raise ConfigurationError("min_step must be <= max_step")
        if self.growth <= 1.0:
            raise ConfigurationError("growth must be > 1.0")
        if not 0.0 < self.shrink < 1.0:
            raise ConfigurationError("shrink must be in (0, 1)")
        _require_positive("max_steps", self.max_steps)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Controls for the solve-failure recovery escalation ladder.

    When an MPDE solve fails (Newton divergence, singular or stagnating
    linear solves, preconditioner degradation, worker-pool trouble) the
    solver classifies the failure (:mod:`repro.resilience.taxonomy`) and
    walks the ``ladder`` of recovery rungs in order, retrying the solve
    under each rung's adjusted configuration until one succeeds or the
    ladder is exhausted.  Every attempt — including the failed baseline —
    is recorded in ``MPDEStats.recovery_trace``.

    Attributes
    ----------
    enabled:
        Master switch.  ``False`` restores the pre-resilience behaviour:
        plain Newton, then (if ``MPDEOptions.use_continuation``) one
        source-stepping fallback, then raise.
    ladder:
        Ordered tuple of rung names to try, drawn from
        :data:`RECOVERY_RUNGS`.  Rungs that do not apply to a failure kind
        or solver configuration (e.g. ``"preconditioner_downgrade"`` in
        direct mode) are skipped and recorded as such.
    max_attempts:
        Hard cap on recovery attempts (ladder rungs actually executed) per
        solve, independent of ladder length.
    damping_factor:
        The ``"damping"`` rung multiplies the Newton damping by this factor
        (and relaxes ``min_damping`` accordingly) before retrying.
    damping_extra_iterations:
        Extra Newton iterations granted by the ``"damping"`` rung, since a
        heavily damped iteration makes less progress per step.
    guess_modes:
        Initial-guess modes the ``"guess_retry"`` rung cycles through
        (skipping the one already in use).
    """

    enabled: bool = True
    ladder: tuple[str, ...] = RECOVERY_RUNGS
    max_attempts: int = 8
    damping_factor: float = 0.25
    damping_extra_iterations: int = 40
    guess_modes: tuple[str, ...] = ("zero", "dc")

    def __post_init__(self) -> None:
        if not isinstance(self.ladder, tuple):
            object.__setattr__(self, "ladder", tuple(self.ladder))
        for rung in self.ladder:
            _require_in("ladder entry", rung, RECOVERY_RUNGS)
        if len(set(self.ladder)) != len(self.ladder):
            raise ConfigurationError(f"ladder has duplicate rungs: {self.ladder!r}")
        _require_positive("max_attempts", self.max_attempts)
        if not 0.0 < self.damping_factor < 1.0:
            raise ConfigurationError(
                f"damping_factor must be in (0, 1), got {self.damping_factor!r}"
            )
        _require_nonnegative("damping_extra_iterations", self.damping_extra_iterations)
        if not isinstance(self.guess_modes, tuple):
            object.__setattr__(self, "guess_modes", tuple(self.guess_modes))
        for mode in self.guess_modes:
            _require_in("guess_modes entry", mode, ("dc", "zero", "transient"))

    def with_(self, **changes: Any) -> "RecoveryPolicy":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TransientOptions:
    """Controls for SPICE-style time-stepping (transient) analysis."""

    method: str = "trapezoidal"
    adaptive: bool = False
    ltetol: float = 1e-4
    min_step: float = 1e-15
    max_step: float = float("inf")
    max_rejections: int = 20
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    store_every: int = 1
    #: Reuse the LU factorisation of the step Jacobian across accepted time
    #: steps (chord Newton), refactoring only when the step size changes or
    #: chord convergence degrades.  Falls back to full Newton per step when
    #: the chord iteration fails, so robustness matches ``False``.  Off by
    #: default: it pays when factorisation dominates an iteration (many
    #: unknowns), while for the small MNA systems typical here the extra
    #: (linearly converging) chord iterations cost more device sweeps than
    #: the saved factorisations.
    chord_newton: bool = False
    #: Chord-iteration budget before the step falls back to full Newton.
    chord_max_iterations: int = 12
    #: Converged chord solves that needed more than this many iterations
    #: trigger a refactorisation at the accepted state (for the next step).
    chord_slow_iterations: int = 5

    _ALLOWED_METHODS = ("backward-euler", "trapezoidal", "gear2")

    def __post_init__(self) -> None:
        _require_in("method", self.method, self._ALLOWED_METHODS)
        _require_positive("ltetol", self.ltetol)
        _require_positive("min_step", self.min_step)
        _require_positive("max_step", self.max_step)
        _require_positive("max_rejections", self.max_rejections)
        _require_positive("store_every", self.store_every)
        _require_positive("chord_max_iterations", self.chord_max_iterations)
        _require_positive("chord_slow_iterations", self.chord_slow_iterations)
        if self.min_step > self.max_step:
            raise ConfigurationError("min_step must be <= max_step")


@dataclass(frozen=True)
class ShootingOptions:
    """Controls for single-tone periodic steady state via shooting."""

    steps_per_period: int = 200
    max_shooting_iterations: int = 30
    abstol: float = 1e-8
    reltol: float = 1e-6
    integration_method: str = "trapezoidal"
    use_matrix_free: bool = False
    gmres_tol: float = 1e-8
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: Reuse the LU factorisation across the inner integration steps of every
    #: shooting sweep (chord Newton); the monodromy accumulation is
    #: unaffected.  Opt-in for the same reason as
    #: ``TransientOptions.chord_newton``.
    chord_newton: bool = False

    def __post_init__(self) -> None:
        _require_positive("steps_per_period", self.steps_per_period)
        _require_positive("max_shooting_iterations", self.max_shooting_iterations)
        _require_positive("abstol", self.abstol)
        _require_positive("reltol", self.reltol)
        _require_positive("gmres_tol", self.gmres_tol)
        _require_in(
            "integration_method",
            self.integration_method,
            TransientOptions._ALLOWED_METHODS,
        )


@dataclass(frozen=True)
class HarmonicBalanceOptions:
    """Controls for (multi-tone) harmonic balance."""

    harmonics: int = 7
    harmonics2: int = 0
    truncation: str = "box"
    oversampling: int = 4
    newton: NewtonOptions = field(default_factory=NewtonOptions)

    def __post_init__(self) -> None:
        _require_positive("harmonics", self.harmonics)
        _require_nonnegative("harmonics2", self.harmonics2)
        _require_in("truncation", self.truncation, ("box", "diamond"))
        _require_positive("oversampling", self.oversampling)
        if self.oversampling < 2:
            raise ConfigurationError("oversampling must be >= 2")


@dataclass(frozen=True)
class MPDEOptions:
    """Controls for the difference-time-scale MPDE solver (the paper's core).

    Attributes
    ----------
    n_fast / n_slow:
        Number of grid points along the fast (carrier) and slow
        (difference-frequency) artificial time axes.  The paper's balanced
        mixer example uses a 40 x 30 grid.
    fast_method / slow_method:
        Finite-difference rule used to discretise the two time derivatives;
        backward Euler ("backward-euler") is robust for the sharp switching
        waveforms targeted by the paper, "central" gives second order on
        smooth problems.
    use_continuation:
        Fall back to source-stepping continuation if plain Newton fails,
        mirroring the paper's use of continuation for hard starts.
    linear_solver:
        "direct" (sparse LU on the assembled Jacobian) or "gmres"
        (ILU-preconditioned Krylov on the assembled Jacobian).
    chord_newton:
        Direct mode only: reuse the sparse LU factorisation across Newton
        iterations (chord Newton) instead of refactoring every iterate,
        refreshing it under the same
        :class:`~repro.linalg.preconditioners.AdaptiveRefreshPolicy`
        discipline the GMRES preconditioner cache uses — the observed
        residual-reduction trend after a rebuild sets the baseline, and a
        degraded trend (or a failed line search) triggers a refactorisation
        at the current iterate.  Chord iterations cost one residual-only
        device sweep plus a back-substitution, so trading a few of them for
        a skipped ``P*n`` factorisation wins for every realistic grid; the
        factorisation count is surfaced as
        ``MPDEStats.jacobian_factorizations``.  Ignored by the GMRES /
        matrix-free modes (their analogue is ``reuse_preconditioner``).
    matrix_free:
        Solve the Newton linear systems with GMRES on a matrix-free
        Jacobian-vector-product operator (the Jacobian is never assembled),
        preconditioned per the ``preconditioner`` mode.  Overrides
        ``linear_solver``.
    preconditioner:
        Preconditioner mode for the GMRES solves (both the assembled
        ``linear_solver="gmres"`` mode and the matrix-free mode):

        * ``"ilu"`` — drop-tolerance incomplete LU; of the assembled Jacobian
          in ``gmres`` mode, of the grid-averaged (frequency-independent)
          Jacobian in matrix-free mode.  The robust general-purpose default.
        * ``"block_circulant"`` — per-harmonic (frequency-domain)
          preconditioner: the grid-averaged Jacobian is FFT-diagonalised
          along both periodic axes and one small complex ``(n, n)`` block is
          factored per harmonic.  The right choice for the spectral
          (``"fourier"``) operators, where it cuts GMRES iteration counts by
          well over 3x versus the averaged ILU (see
          ``tests/test_preconditioners.py`` and ``BENCH_perf_assembly.json``).
        * ``"block_circulant_fast"`` — the *partially-averaged* variant: the
          device blocks are averaged only along the slow axis, keeping the
          per-fast-point (LO-phase) variation that carries the physics of
          strongly switched circuits.  Only the slow axis is
          FFT-diagonalised; one sparse ``(n_fast * n, n_fast * n)`` complex
          system is LU-factored per slow harmonic, lazily on first use (only
          ``n_slow // 2 + 1`` of them — conjugate symmetry supplies the
          rest; ``MPDEStats.preconditioner_harmonic_builds`` counts the
          factorisations).  Rebuilt fresh every Newton iterate like
          ``"block_circulant"`` — a stale instance is invalidated by one
          Newton step exactly because it tracks the fast-axis operating
          points.  Cuts total GMRES iterations by a further >= 1.5x versus
          ``"block_circulant"`` on the LO-switched balanced mixer.
        * ``"jacobi"`` — diagonal scaling; cheap but weak.
        * ``"none"`` — unpreconditioned GMRES (diagnostics only).
    reuse_preconditioner:
        Keep *expensive* preconditioner factorisations (ILU) across Newton
        iterations, rebuilding when the adaptive refresh policy flags the
        cache stale (see below) or when GMRES fails to converge with the
        stale factorisation.  Modes whose rebuild is cheap relative to the
        iterations a stale build costs (``"block_circulant"``,
        ``"block_circulant_fast"``, ``"jacobi"``, ``"none"``) are rebuilt
        from fresh Jacobian data at every Newton iterate regardless —
        caching them would trade accuracy for a negligible (or, for the
        partially-averaged mode, measured-negative) saving.
    precond_refresh_growth / precond_refresh_slack:
        Adaptive refresh policy: the first GMRES solve after a rebuild sets a
        baseline inner-iteration count; a later solve exceeding
        ``baseline * precond_refresh_growth + precond_refresh_slack``
        iterations marks the cached preconditioner stale so it is rebuilt
        *before* the next solve (instead of only after an outright GMRES
        failure, which wasted a full failed solve).
    parallel:
        Route the solve through the parallel execution layer
        (:mod:`repro.parallel`): device evaluations run on the *sharded*
        kernel backend (the ``P`` grid-point axis split across forked
        workers, bit-for-bit equal to serial), and the
        ``"block_circulant_fast"`` preconditioner batch-factors its
        independent per-slow-harmonic LUs *eagerly* on a shared worker pool
        instead of lazily one by one.  Degrades gracefully: when the
        environment cannot shard (or a worker fails mid-solve) everything
        falls back to the serial paths and
        ``MPDEStats.parallel_fallback_reason`` records why.  See
        ``docs/parallel.md`` for the cost model — sharding pays only once
        ``P * n_group`` kernel work dominates the per-evaluation dispatch
        overhead.
    n_workers:
        Worker count for ``parallel=True``.  ``None`` auto-sizes from the
        usable CPU count (and resolves to serial on one CPU); an explicit
        count >= 2 forces real worker pools wherever ``fork`` exists.
    factor_backend:
        How ``parallel=True`` runs the ``"block_circulant_fast"``
        per-harmonic factorisations and applies:

        * ``"threads"`` (default) — eager batch factorisation on an
          in-process thread pool; the SuperLU factors live in the parent
          and every apply back-substitutes serially there.
        * ``"resident"`` — a worker-resident factor service
          (:class:`~repro.parallel.factor_service.ResidentFactorPool`):
          each forked worker *owns* a contiguous slice of the
          ``n_slow // 2 + 1`` distinct harmonics, factors it in-worker from
          shared-memory copies of the base matrices (SuperLU objects never
          cross the process boundary), and serves batched back-substitutions
          so the per-harmonic solves of one preconditioner apply run
          concurrently.  Bit-for-bit equal to ``"threads"``; falls back to
          the in-process path (sticky, with the reason recorded in
          ``MPDEStats.parallel_fallback_reason``) when a worker fails or
          hangs.  Ignored by every other preconditioner mode and by
          ``parallel=False``.
    worker_timeout_s:
        Watchdog deadline (seconds) on every reply the resident factor
        service gathers from its workers.  A worker that does not answer in
        time is treated as hung: the service tears its pool down (SIGTERM
        escalating to SIGKILL, shared memory unlinked) and the solve
        continues on the in-process factor path.  ``None`` disables the
        watchdog.  The sharded *evaluation* pool has its own knob of the
        same name on :class:`EvaluationOptions`.
    restart:
        :class:`RestartPolicy` driving supervised self-healing of the
        resident factor service (and of any sharded evaluation pool the
        solve routes through): a crashed/hung pool is restarted with
        exponential backoff and parity-probed before re-admission, and only
        an exhausted restart budget flips the solve to the sticky serial
        path.  Heals and exhaustions land on
        ``MPDEStats.supervisor_trace``, and
        ``MPDEStats.parallel_fallback_reason`` distinguishes
        ``"degraded (healing): ..."`` from
        ``"disabled (budget exhausted): ..."``.
    recovery:
        The :class:`RecoveryPolicy` escalation ladder applied when a solve
        fails.  The default policy retries through Newton refresh, extra
        damping, preconditioner downgrade, source-stepping continuation and
        an initial-guess change, recording every attempt in
        ``MPDEStats.recovery_trace``.  ``RecoveryPolicy(enabled=False)``
        restores the pre-resilience raise-on-first-failure behaviour
        (modulo the legacy ``use_continuation`` fallback).
    deadline_s:
        Cooperative wall-clock budget (seconds) for one ``solve()`` call,
        recovery attempts included.  Checked at Newton/GMRES iteration
        boundaries and between recovery rungs — never mid-factorisation —
        and enforced by raising
        :class:`~repro.utils.exceptions.DeadlineExceededError` carrying the
        partial :class:`~repro.core.solver.MPDEStats`.  ``None`` (default)
        disables the deadline.
    checkpoint_path:
        Optional filesystem path for crash-consistent checkpoint
        persistence.  The solver always keeps an in-memory
        :class:`~repro.resilience.checkpoint.SolveCheckpoint` of the latest
        accepted Newton iterate (surfaced on the ``.checkpoint`` attribute
        of :class:`~repro.utils.exceptions.DeadlineExceededError` and of
        exhausted-ladder terminal failures); with a path set, every
        checkpoint is additionally written as an ``.npz`` file via
        write-to-temporary + atomic rename, so a killed process leaves
        either the previous consistent checkpoint or the new one — never a
        torn file.  Resume with ``solve_mpde(..., resume_from=...)``.
    """

    n_fast: int = 40
    n_slow: int = 30
    fast_method: str = "bdf2"
    slow_method: str = "bdf2"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(max_iterations=80))
    use_continuation: bool = True
    continuation: ContinuationOptions = field(default_factory=ContinuationOptions)
    linear_solver: str = "direct"
    chord_newton: bool = True
    matrix_free: bool = False
    preconditioner: str = "ilu"
    reuse_preconditioner: bool = True
    precond_refresh_growth: float = 1.6
    precond_refresh_slack: int = 8
    gmres_tol: float = 1e-9
    gmres_restart: int = 80
    initial_guess: str = "dc"
    parallel: bool = False
    n_workers: int | None = None
    factor_backend: str = "threads"
    worker_timeout_s: float | None = 120.0
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    deadline_s: float | None = None
    checkpoint_path: str | None = None

    _ALLOWED_FD = ("backward-euler", "bdf2", "central", "fourier")
    _ALLOWED_PRECONDITIONERS = PRECONDITIONER_KINDS

    def __post_init__(self) -> None:
        _require_positive("n_fast", self.n_fast)
        _require_positive("n_slow", self.n_slow)
        if self.n_fast < 3 or self.n_slow < 3:
            raise ConfigurationError("MPDE grids need at least 3 points per axis")
        _require_in("fast_method", self.fast_method, self._ALLOWED_FD)
        _require_in("slow_method", self.slow_method, self._ALLOWED_FD)
        _require_in("linear_solver", self.linear_solver, ("direct", "gmres"))
        _require_in("preconditioner", self.preconditioner, self._ALLOWED_PRECONDITIONERS)
        _require_in("initial_guess", self.initial_guess, ("dc", "zero", "transient"))
        if self.precond_refresh_growth <= 1.0:
            raise ConfigurationError(
                f"precond_refresh_growth must be > 1.0, got {self.precond_refresh_growth!r}"
            )
        _require_nonnegative("precond_refresh_slack", self.precond_refresh_slack)
        _require_positive("gmres_tol", self.gmres_tol)
        _require_positive("gmres_restart", self.gmres_restart)
        if self.n_workers is not None:
            _require_positive("n_workers", self.n_workers)
        _require_in("factor_backend", self.factor_backend, FACTOR_BACKENDS)
        if self.worker_timeout_s is not None:
            _require_positive("worker_timeout_s", self.worker_timeout_s)
        if not isinstance(self.restart, RestartPolicy):
            raise ConfigurationError(
                f"restart must be a RestartPolicy, got {type(self.restart).__name__}"
            )
        if not isinstance(self.recovery, RecoveryPolicy):
            raise ConfigurationError(
                f"recovery must be a RecoveryPolicy, got {type(self.recovery).__name__}"
            )
        if self.deadline_s is not None:
            _require_positive("deadline_s", self.deadline_s)
        if self.checkpoint_path is not None and not str(self.checkpoint_path):
            raise ConfigurationError("checkpoint_path must be a non-empty path or None")

    def with_grid(self, n_fast: int, n_slow: int) -> "MPDEOptions":
        """Return a copy with a different multi-time grid resolution."""
        return replace(self, n_fast=n_fast, n_slow=n_slow)


def options_from_mapping(cls: type, mapping: Mapping[str, Any]) -> Any:
    """Build an option bundle of type ``cls`` from a plain mapping.

    Unknown keys raise :class:`ConfigurationError` instead of being silently
    ignored, which catches typos in user configuration dictionaries.
    """
    import dataclasses

    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(mapping) - valid
    if unknown:
        raise ConfigurationError(
            f"unknown option(s) for {cls.__name__}: {sorted(unknown)!r}"
        )
    return cls(**dict(mapping))
