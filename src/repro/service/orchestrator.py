"""The simulation service: bounded-queue orchestration with load shedding.

:class:`SimulationService` owns the warm infrastructure — a
:class:`~repro.service.cache.CompiledCircuitCache`, a pool of worker
threads, the telemetry accumulator and an optional memoised result cache —
and moves :class:`~repro.service.jobs.Job` objects through it:

* **Admission control.**  The queue is bounded; a submission arriving at a
  full queue is rejected immediately with a structured
  :class:`~repro.utils.exceptions.ServiceOverloadedError` (queue depth,
  capacity and a latency-derived ``retry_after_s`` hint attached) instead
  of queueing unboundedly.  Shedding is graceful degradation: the client
  knows synchronously, nothing is silently dropped later.
* **Execution.**  Worker threads drain the queue FIFO; each job runs its
  retry/deadline/checkpoint state machine (:mod:`~repro.service.jobs`)
  against the shared compiled-circuit cache.
* **Memoised results.**  Identical repeated requests (same scenario,
  overrides and options; not checkpoint-stateful) can be served from a
  result cache without re-solving — the warm path of the service
  throughput floor.  Disable with ``memoize_results=False`` whenever every
  request must really solve (the chaos soak does).
* **Shutdown.**  ``shutdown(drain=True)`` stops admissions, finishes (or
  cancels, for ``drain=False``) the queue, joins every worker and closes
  the cache — which closes every compiled system and thereby its worker
  pools and shared memory.  Idempotent: a second call is a no-op, and the
  service is a context manager.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..utils.exceptions import ConfigurationError, ServiceError, ServiceOverloadedError
from .cache import CompiledCircuitCache
from .jobs import Job, JobRetryPolicy, SweepRequest
from .telemetry import ServiceSnapshot, ServiceTelemetry

__all__ = ["ServiceOptions", "SimulationService"]


@dataclass(frozen=True)
class ServiceOptions:
    """Configuration of a :class:`SimulationService`.

    Attributes
    ----------
    n_workers:
        Worker threads draining the queue (= maximum concurrent solves).
    queue_capacity:
        Maximum *queued* (not yet running) jobs before admission control
        sheds new submissions.
    cache_capacity:
        Entries in the compiled-circuit LRU cache.
    memoize_results:
        Serve identical repeated requests from a result cache without
        re-solving (see the module docstring).
    default_deadline_s:
        Per-job deadline applied when a request does not set its own
        (``None``: unbounded).
    retry:
        Default :class:`JobRetryPolicy` for requests without their own.
    drain_timeout_s:
        How long :meth:`SimulationService.shutdown` waits for each worker
        thread to finish before giving up on the join.
    """

    n_workers: int = 2
    queue_capacity: int = 8
    cache_capacity: int = 8
    memoize_results: bool = True
    default_deadline_s: float | None = None
    retry: JobRetryPolicy = field(default_factory=JobRetryPolicy)
    drain_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        for name in ("n_workers", "queue_capacity", "cache_capacity"):
            value = getattr(self, name)
            if value < 1 or int(value) != value:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s!r}"
            )


class SimulationService:
    """Concurrent sweep execution on warm infrastructure (module docstring)."""

    def __init__(
        self,
        options: ServiceOptions | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.options = options if options is not None else ServiceOptions()
        self._clock = clock
        self._sleep = sleep
        self._cache = CompiledCircuitCache(self.options.cache_capacity)
        self._telemetry = ServiceTelemetry(clock=clock)
        self._lock = threading.Lock()
        self._queue_ready = threading.Condition(self._lock)
        self._queue: "deque[Job]" = deque()
        self._memo: dict[str, Any] = {}
        self._job_counter = 0
        self._shutting_down = False
        self._shutdown_done = False
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-svc-worker-{i}", daemon=True
            )
            for i in range(self.options.n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self, request: SweepRequest | str, /, **overrides: Any
    ) -> Job:
        """Accept a request (or ``submit("name", param=value, ...)`` shorthand).

        Returns the :class:`Job` immediately; raises
        :class:`ServiceOverloadedError` when the queue is full and
        :class:`ServiceError` once the service is shutting down.
        """
        if isinstance(request, str):
            request = SweepRequest(scenario=request, overrides=overrides)
        elif overrides:
            raise ConfigurationError(
                "parameter overrides go inside the SweepRequest when one is passed"
            )
        memo_key = request.memo_key() if self.options.memoize_results else None
        with self._lock:
            if self._shutting_down:
                raise ServiceError("simulation service is shut down")
            if memo_key is not None and memo_key in self._memo:
                job = self._new_job_locked(request)
                self._telemetry.record_submitted()
                job.finish_from_memo(self._memo[memo_key])
                self._telemetry.record_finished(job)
                return job
            if len(self._queue) >= self.options.queue_capacity:
                self._telemetry.record_shed()
                depth = len(self._queue)
                hint = self._retry_after_hint_locked(depth)
                raise ServiceOverloadedError(
                    f"queue full ({depth}/{self.options.queue_capacity} jobs "
                    "waiting); back off and resubmit",
                    queue_depth=depth,
                    capacity=self.options.queue_capacity,
                    retry_after_s=hint,
                )
            job = self._new_job_locked(request)
            self._telemetry.record_submitted()
            self._queue.append(job)
            self._queue_ready.notify()
        return job

    def _new_job_locked(self, request: SweepRequest) -> Job:
        self._job_counter += 1
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else self.options.default_deadline_s
        )
        return Job(
            request,
            job_id=f"job-{self._job_counter:04d}",
            retry=request.retry if request.retry is not None else self.options.retry,
            deadline_s=deadline_s,
            clock=self._clock,
            sleep=self._sleep,
        )

    def _retry_after_hint_locked(self, depth: int) -> float | None:
        snapshot = self._telemetry.snapshot()
        if snapshot.completed == 0 or snapshot.latency_p50_s <= 0.0:
            return None
        # Rough drain estimate: queued jobs at median latency across workers.
        return depth * snapshot.latency_p50_s / self.options.n_workers

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._queue_ready:
                while not self._queue and not self._shutting_down:
                    self._queue_ready.wait()
                if not self._queue:
                    return  # shutting down and drained
                job = self._queue.popleft()
            if job.cancelled():
                job.finish_cancelled("while queued")
                self._telemetry.record_finished(job)
                continue
            job.execute(self._cache)
            if job.status == "succeeded" and self.options.memoize_results:
                memo_key = job.request.memo_key()
                if memo_key is not None:
                    with self._lock:
                        self._memo.setdefault(memo_key, job.run)
            self._telemetry.record_finished(job)

    # -- caller-facing control ------------------------------------------------

    def cancel(self, job: Job) -> bool:
        """Cancel a job: immediately if still queued, cooperatively if running.

        Returns True when the job will (or did) end cancelled, False when
        it already reached a terminal state.
        """
        with self._lock:
            try:
                self._queue.remove(job)
            except ValueError:
                pass
            else:
                job.finish_cancelled("while queued")
                self._telemetry.record_finished(job)
                return True
        return job.cancel()

    @property
    def cache(self) -> CompiledCircuitCache:
        return self._cache

    def telemetry(self) -> ServiceSnapshot:
        """The service-level trajectory, cache counters included."""
        return self._telemetry.snapshot(self._cache.stats())

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- shutdown -------------------------------------------------------------

    def shutdown(self, *, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop the service (idempotent — a second call returns immediately).

        ``drain=True`` finishes every queued job first; ``drain=False``
        cancels the queue (running jobs still stop only at their next
        attempt boundary).  Either way every worker thread is joined and
        the compiled-circuit cache is closed, closing every cached
        system's pools and shared memory.
        """
        timeout_s = timeout_s if timeout_s is not None else self.options.drain_timeout_s
        with self._queue_ready:
            if self._shutdown_done:
                return
            self._shutting_down = True
            cancelled: list[Job] = []
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
            self._queue_ready.notify_all()
        for job in cancelled:
            job.finish_cancelled("service shutdown without drain")
            self._telemetry.record_finished(job)
        for worker in self._workers:
            worker.join(timeout=timeout_s)
        self._cache.close()
        with self._lock:
            self._shutdown_done = True

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)
