"""Fault-tolerant simulation service: sweeps as requests on warm infrastructure.

The production-scale front end over the solver stack: many concurrent solve
requests — named scenario-registry workloads plus parameter overrides, the
request vocabulary PR 9 established — run against shared warm state, robust
by construction.  Four pieces:

* :mod:`~repro.service.cache` — :class:`CompiledCircuitCache`, an LRU cache
  of compiled :class:`~repro.circuits.mna.MNASystem` objects keyed by
  scenario fingerprint + case, with hit/miss/eviction counters and
  lease-based exclusive access (solves share scratch buffers, so a cached
  system is handed to exactly one job at a time); evicted systems are
  closed so their worker pools and shared memory are released.
* :mod:`~repro.service.jobs` — :class:`Job` / :class:`SweepRequest` /
  :class:`JobRetryPolicy`: per-job ``deadline_s`` (queue wait included),
  a bounded retry budget with exponential backoff + deterministic jitter
  (the :class:`~repro.utils.options.RestartPolicy` backoff shape),
  terminal-vs-retryable classification via
  :func:`~repro.resilience.taxonomy.classify_failure`, and checkpoint-backed
  resume — a retried attempt continues from the failed attempt's
  :class:`~repro.resilience.checkpoint.SolveCheckpoint` instead of
  restarting from zero.
* :mod:`~repro.service.orchestrator` — :class:`SimulationService` /
  :class:`ServiceOptions`: a bounded-queue thread pool with admission
  control (a full queue sheds load with a structured
  :class:`~repro.utils.exceptions.ServiceOverloadedError`, never queues
  unboundedly), cancellation, an optional memoized result cache for
  repeated identical requests, and an idempotent graceful-drain
  ``shutdown()`` that closes every cached system (no zombie pools, no
  leaked shared memory — the PR-8 invariants at service scope).
* :mod:`~repro.service.telemetry` — :class:`ServiceTelemetry`: per-job
  records aggregated into a service-level trajectory (throughput, p50/p95
  latency, retries, sheds, supervised heals, cache hit rate).

The service's failure sites (``service.cache_build``,
``service.job_dispatch``) are compiled into the
:mod:`~repro.resilience.faultinject` registry, so the chaos harness soaks
the orchestrator the same way it soaks the solver
(``REPRO_FAULT_PROFILE="chaos-service:<seed>"``).  Write-up in
``docs/service.md``.
"""

from .cache import CacheStats, CompiledCircuitCache
from .jobs import (
    JOB_STATES,
    Job,
    JobAttempt,
    JobRetryPolicy,
    SweepRequest,
    is_retryable,
)
from .orchestrator import ServiceOptions, SimulationService
from .telemetry import JobRecord, ServiceSnapshot, ServiceTelemetry

__all__ = [
    "CacheStats",
    "CompiledCircuitCache",
    "JOB_STATES",
    "Job",
    "JobAttempt",
    "JobRetryPolicy",
    "SweepRequest",
    "is_retryable",
    "ServiceOptions",
    "SimulationService",
    "JobRecord",
    "ServiceSnapshot",
    "ServiceTelemetry",
]
