"""Job layer: per-job deadlines, bounded retries, checkpoint-backed resume.

A :class:`SweepRequest` names a registered scenario plus parameter
overrides — the request vocabulary of :mod:`repro.scenarios` — and a
:class:`Job` is one accepted request moving through the service:

``pending -> running -> (retrying -> running)* -> succeeded``
``                                  \\-> failed | timed_out | cancelled``

Failure handling is the resilience taxonomy applied at service scope.
Every solve attempt's exception is classified by
:func:`~repro.resilience.taxonomy.classify_failure`; retryable kinds
(divergence, singular, GMRES stagnation, worker-pool trouble, non-finite
residuals, service-infrastructure faults) consume the job's bounded retry
budget with exponential backoff + deterministic jitter (the
:class:`~repro.utils.options.RestartPolicy` backoff shape), while terminal
kinds — an expired deadline, configuration/netlist errors, untrusted
checkpoints, anything unclassified — fail the job immediately.  When a
failed attempt carried a :class:`~repro.resilience.checkpoint.SolveCheckpoint`
(deadline expiries and exhausted-ladder failures attach one), the retry
passes it back as ``resume_from=`` and continues from the interrupted
iterate instead of restarting from zero.

The per-job deadline starts at *submission* (queue wait counts — a request
stuck behind a long queue times out like one stuck in a solve), and each
attempt hands the solver only the remaining budget, so retries can never
stretch a job past its deadline.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..resilience.deadline import Deadline
from ..resilience.faultinject import fault_site
from ..resilience.taxonomy import classify_failure
from ..scenarios.registry import (
    ScenarioCase,
    build_scenario,
    build_scenario_smoke,
    run_scenario,
    scenario_fingerprint,
    solve_case,
)
from ..utils.exceptions import (
    CheckpointError,
    CircuitError,
    ConfigurationError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from ..utils.options import MPDEOptions, RestartPolicy
from .telemetry import result_stats, trace_counts

__all__ = [
    "JOB_STATES",
    "Job",
    "JobAttempt",
    "JobRetryPolicy",
    "SweepRequest",
    "is_retryable",
]

#: Every state a job can report (see the module docstring for the lifecycle).
JOB_STATES = (
    "pending",
    "running",
    "retrying",
    "succeeded",
    "failed",
    "timed_out",
    "cancelled",
)

#: Failure kinds the retry budget is spent on; everything else is terminal.
#: ``"deadline"`` is deliberately absent (the budget is gone — retrying
#: would only time out again) and so is ``"unknown"`` (an unclassified
#: failure is a bug, and retrying a bug hides it).
RETRYABLE_KINDS = frozenset(
    {
        "divergence",
        "singular",
        "gmres_stagnation",
        "worker_pool",
        "non_finite",
        "service",
    }
)


def is_retryable(exc: BaseException) -> bool:
    """Whether the job layer may spend retry budget on ``exc``.

    Classification comes from :func:`classify_failure`; on top of it,
    configuration and netlist errors, untrusted checkpoints and admission
    rejections are always terminal — retrying them re-runs the same broken
    input.
    """
    if isinstance(
        exc, (ConfigurationError, CircuitError, CheckpointError, ServiceOverloadedError)
    ):
        return False
    return classify_failure(exc) in RETRYABLE_KINDS


@dataclass(frozen=True)
class JobRetryPolicy:
    """Bounded retry budget with exponential backoff + deterministic jitter.

    The backoff shape is :meth:`RestartPolicy.backoff_s` — attempt ``k``
    waits ``min(backoff_base_s * 2**(k-1), backoff_cap_s)`` — scaled by a
    jitter factor in ``[1, 1 + jitter_fraction]`` derived from a hash of
    the job/attempt token, so concurrent retries de-synchronise without
    wall-clock randomness (the schedule is reproducible).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0 or int(self.max_retries) != self.max_retries:
            raise ConfigurationError(
                f"max_retries must be a non-negative integer, got {self.max_retries!r}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigurationError("backoff times must be non-negative")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction!r}"
            )

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Backoff (seconds) before 1-based retry ``attempt`` of ``token``."""
        shape = RestartPolicy(
            max_restarts=max(self.max_retries, 1),
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
        )
        base = shape.backoff_s(attempt)
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2**64)
        return base * (1.0 + self.jitter_fraction * unit)


@dataclass(frozen=True)
class SweepRequest:
    """One sweep request: a registered scenario name plus how to run it.

    Attributes
    ----------
    scenario:
        Name in the scenario registry (:func:`repro.scenarios.scenario_names`).
    overrides:
        Parameter overrides for :func:`build_scenario` — must name declared
        scenario parameters.
    smoke:
        Build at the scenario's downsized smoke configuration (default;
        the golden-pinned shape every automated check runs at).
    first_case_only:
        Solve only the first case (skip sweep tails and aggregates).
    deadline_s:
        Per-job wall-clock budget, measured from *submission*; ``None``
        falls back to the service default.
    retry:
        Per-job :class:`JobRetryPolicy` override (``None``: service default).
    solve_options:
        :class:`MPDEOptions` template for the solves (the case grid still
        wins ``n_fast``/``n_slow`` — see :func:`solve_case`).
    compile_options:
        :class:`~repro.utils.options.EvaluationOptions` for compiling the
        circuits (e.g. a sharded kernel backend); part of the cache key.
    checkpoint_path / resume_from:
        Forwarded to :func:`solve_case` — persist checkpoints, or start
        from a prior one.
    label:
        Free-form tag echoed in telemetry.
    """

    scenario: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    smoke: bool = True
    first_case_only: bool = True
    deadline_s: float | None = None
    retry: JobRetryPolicy | None = None
    solve_options: MPDEOptions | None = None
    compile_options: Any = None
    checkpoint_path: Any = None
    resume_from: Any = None
    label: str = ""

    def memo_key(self) -> str | None:
        """Identity string for the service's result-memoisation layer.

        ``None`` marks the request non-memoisable: resuming from a
        checkpoint or persisting one makes the run stateful, so its result
        must not be replayed for a different request.
        """
        if self.resume_from is not None or self.checkpoint_path is not None:
            return None
        overrides = ",".join(
            f"{key}={self.overrides[key]!r}" for key in sorted(self.overrides)
        )
        return (
            f"{self.scenario}|smoke={self.smoke}|first={self.first_case_only}|"
            f"overrides[{overrides}]|solve={self.solve_options!r}|"
            f"compile={self.compile_options!r}"
        )


@dataclass(frozen=True)
class JobAttempt:
    """One solve attempt of one case (the job-level analogue of
    :class:`~repro.resilience.taxonomy.RecoveryAttempt`)."""

    index: int
    case_label: str
    outcome: str  # "succeeded" | "retried" | "failed"
    kind: str = ""
    detail: str = ""
    backoff_s: float = 0.0
    duration_s: float = 0.0
    resumed_from_checkpoint: bool = False
    #: Worker-pool recoveries absorbed underneath this attempt's solve
    #: (counted off the solve's supervisor trace; failed attempts report
    #: them through the partial stats their exception carries).
    heals: int = 0
    restarts: int = 0


class _JobCancelled(ServiceError):
    """Internal: a cooperative cancellation observed between attempts."""


class Job:
    """One accepted request moving through the service (see module docstring).

    Thread model: the submitting thread constructs the job and may call
    :meth:`cancel` / :meth:`result` / :meth:`wait`; exactly one worker
    thread calls :meth:`execute`.  Status and attempt records are only
    written by the worker (plus the terminal write under ``_finish``), and
    readers synchronise on the ``done`` event.
    """

    def __init__(
        self,
        request: SweepRequest,
        *,
        job_id: str,
        retry: JobRetryPolicy,
        deadline_s: float | None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.id = job_id
        self.request = request
        self.status = "pending"
        self.attempts: list[JobAttempt] = []
        self.run = None  # ScenarioRun on success
        self.error: BaseException | None = None
        self.checkpoint = None  # latest SolveCheckpoint observed on a failure
        self.from_result_cache = False
        self._retry = retry
        self._clock = clock
        self._sleep = sleep
        self._deadline = Deadline(deadline_s, clock=clock)
        self._done = threading.Event()
        self._cancel = threading.Event()
        self.submitted_at = clock()
        self.started_at: float | None = None
        self.finished_at: float | None = None

    # -- caller-facing surface ------------------------------------------------

    @property
    def retries(self) -> int:
        """Attempts that ended in a retry (== backoff sleeps taken)."""
        return sum(1 for attempt in self.attempts if attempt.outcome == "retried")

    @property
    def heals(self) -> int:
        """Worker-pool heals absorbed underneath this job's solve attempts."""
        return sum(attempt.heals for attempt in self.attempts)

    @property
    def restarts(self) -> int:
        """Worker-pool restart attempts underneath this job's solve attempts."""
        return sum(attempt.restarts for attempt in self.attempts)

    @property
    def queue_wait_s(self) -> float:
        start = self.started_at if self.started_at is not None else self.finished_at
        if start is None:
            return 0.0
        return max(start - self.submitted_at, 0.0)

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (True if it did)."""
        return self._done.wait(timeout)

    def cancel(self) -> bool:
        """Request cooperative cancellation; True if the job may still stop.

        A pending job is cancelled before it starts; a running job stops at
        the next attempt boundary (a solve in flight is not interrupted).
        Already-terminal jobs are unaffected (returns False).
        """
        self._cancel.set()
        return not self._done.is_set()

    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def result(self, timeout: float | None = None):
        """The job's :class:`~repro.scenarios.registry.ScenarioRun`, or raise.

        Blocks until terminal (``TimeoutError`` if ``timeout`` expires
        first); failed / timed-out / cancelled jobs re-raise their
        terminal error.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.id} not done after {timeout} s (status {self.status!r})"
            )
        if self.status == "succeeded":
            return self.run
        assert self.error is not None
        raise self.error

    # -- worker-facing surface -----------------------------------------------

    def _finish(self, status: str, *, run=None, error: BaseException | None = None) -> None:
        self.run = run
        self.error = error
        self.status = status
        self.finished_at = self._clock()
        self._done.set()

    def finish_from_memo(self, run) -> None:
        """Terminal success served from the service's memoised result cache."""
        self.started_at = self._clock()
        self.from_result_cache = True
        self._finish("succeeded", run=run)

    def finish_cancelled(self, detail: str = "") -> None:
        """Terminal cancellation (pending job cancelled / non-drain shutdown)."""
        suffix = f": {detail}" if detail else ""
        self._finish(
            "cancelled", error=ServiceError(f"job {self.id} cancelled{suffix}")
        )

    def execute(self, cache) -> None:
        """Run the request to a terminal state (worker-thread entry point)."""
        if self._cancel.is_set():
            self.finish_cancelled("before start")
            return
        self.started_at = self._clock()
        self.status = "running"
        request = self.request
        try:
            builder = build_scenario_smoke if request.smoke else build_scenario
            scenario = builder(request.scenario, **dict(request.overrides))
            fingerprint = scenario_fingerprint(scenario)
            run = run_scenario(
                scenario,
                first_case_only=request.first_case_only,
                solve=lambda case: self._solve_with_retry(case, cache, fingerprint),
            )
        except _JobCancelled as exc:
            self._finish("cancelled", error=exc)
            return
        except DeadlineExceededError as exc:
            if exc.checkpoint is not None:
                self.checkpoint = exc.checkpoint
            self._finish("timed_out", error=exc)
            return
        except Exception as exc:  # terminal classification happened below
            checkpoint = getattr(exc, "checkpoint", None)
            if checkpoint is not None:
                self.checkpoint = checkpoint
            self._finish("failed", error=exc)
            return
        self._finish("succeeded", run=run)

    def _compile(self, case: ScenarioCase):
        if self.request.compile_options is not None:
            return case.circuit.compile(options=self.request.compile_options)
        return case.circuit.compile()

    def _cache_key(self, case: ScenarioCase, fingerprint: str) -> str:
        return f"{fingerprint}|{case.label}|compile={self.request.compile_options!r}"

    def _solve_with_retry(self, case: ScenarioCase, cache, fingerprint: str):
        """Solve one case under the job deadline, retrying per the policy."""
        policy = self._retry
        resume = self.request.resume_from
        attempt = 0
        key = self._cache_key(case, fingerprint)
        while True:
            attempt += 1
            if self._cancel.is_set():
                raise _JobCancelled(
                    f"job {self.id} cancelled before attempt {attempt} of "
                    f"case {case.label!r}"
                )
            self._deadline.check(stage=f"job:{case.label}")
            started = self._clock()
            resumed = resume is not None
            try:
                fault_site(
                    "service.job_dispatch", job=self.id, case=case.label, attempt=attempt
                )
                with cache.lease(key, lambda: self._compile(case)) as mna:
                    remaining = self._deadline.remaining()
                    solver_deadline = None if remaining == float("inf") else remaining
                    result = solve_case(
                        case,
                        mna=mna,
                        options=self.request.solve_options,
                        deadline_s=solver_deadline,
                        checkpoint_path=self.request.checkpoint_path,
                        resume_from=resume,
                    )
            except Exception as exc:
                duration = self._clock() - started
                kind = classify_failure(exc)
                heals, restarts = trace_counts(getattr(exc, "partial_stats", None))
                checkpoint = getattr(exc, "checkpoint", None)
                if checkpoint is not None:
                    self.checkpoint = checkpoint
                terminal = (
                    isinstance(exc, DeadlineExceededError)
                    or not is_retryable(exc)
                    or attempt > policy.max_retries
                )
                if terminal:
                    self.attempts.append(
                        JobAttempt(
                            index=attempt,
                            case_label=case.label,
                            outcome="failed",
                            kind=kind,
                            detail=str(exc),
                            duration_s=duration,
                            resumed_from_checkpoint=resumed,
                            heals=heals,
                            restarts=restarts,
                        )
                    )
                    raise
                backoff = policy.backoff_s(
                    attempt, token=f"{self.id}:{case.label}:{attempt}"
                )
                self.attempts.append(
                    JobAttempt(
                        index=attempt,
                        case_label=case.label,
                        outcome="retried",
                        kind=kind,
                        detail=str(exc),
                        backoff_s=backoff,
                        duration_s=duration,
                        resumed_from_checkpoint=resumed,
                        heals=heals,
                        restarts=restarts,
                    )
                )
                if checkpoint is not None:
                    resume = checkpoint
                self.status = "retrying"
                # Never sleep past the job deadline: cap the backoff at the
                # remaining budget and let the next loop head raise expiry.
                self._sleep(min(backoff, max(self._deadline.remaining(), 0.0)))
                self.status = "running"
            else:
                heals, restarts = trace_counts(result_stats(result))
                self.attempts.append(
                    JobAttempt(
                        index=attempt,
                        case_label=case.label,
                        outcome="succeeded",
                        duration_s=self._clock() - started,
                        resumed_from_checkpoint=resumed,
                        heals=heals,
                        restarts=restarts,
                    )
                )
                return result
