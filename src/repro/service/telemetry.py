"""Service-level telemetry: per-job records aggregated into a trajectory.

Every solve already accounts for itself (``MPDEStats``: iteration counts,
wall-time buckets, recovery and supervisor traces).  This module rolls
those per-job facts up to the service level — the trajectory an operator
watches: throughput, p50/p95 latency, retries spent, requests shed at
admission, supervised pool heals, and the compiled-circuit cache hit rate.

The aggregation is deliberately write-cheap (one locked append per event)
and read-on-demand: :meth:`ServiceTelemetry.snapshot` computes the derived
figures when asked.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from .cache import CacheStats

__all__ = [
    "JobRecord",
    "ServiceSnapshot",
    "ServiceTelemetry",
    "result_stats",
    "supervisor_counts",
    "trace_counts",
]


def result_stats(result):
    """The solver stats a case result carries, or ``None``.

    MPDE results expose ``stats`` directly, HB results through their
    ``mpde`` sub-result; PSS results without stats yield ``None``.
    """
    stats = getattr(result, "stats", None)
    if stats is None:
        mpde = getattr(result, "mpde", None)
        stats = getattr(mpde, "stats", None)
    return stats


def trace_counts(stats) -> tuple[int, int]:
    """(heals, restarts) counted off one solve's supervisor trace.

    These are the worker-pool recoveries that happened *underneath* a
    solve, invisible to the job retry budget; failed solves report them
    too, through the ``partial_stats`` their exception carries.
    """
    heals = 0
    restarts = 0
    trace = getattr(stats, "supervisor_trace", None) or ()
    for event in trace:
        action = getattr(event, "action", "")
        if action == "healed":
            heals += 1
        elif action == "restarted":
            restarts += 1
    return heals, restarts


def supervisor_counts(run) -> tuple[int, int]:
    """(heals, restarts) summed over a ScenarioRun's solver supervisor traces."""
    heals = 0
    restarts = 0
    if run is None:
        return heals, restarts
    for case_run in run.case_runs:
        case_heals, case_restarts = trace_counts(result_stats(case_run.result))
        heals += case_heals
        restarts += case_restarts
    return heals, restarts


@dataclass(frozen=True)
class JobRecord:
    """One finished job as telemetry sees it."""

    job_id: str
    scenario: str
    label: str
    status: str
    attempts: int
    retries: int
    heals: int
    restarts: int
    queue_wait_s: float
    total_s: float
    from_result_cache: bool


@dataclass(frozen=True)
class ServiceSnapshot:
    """The service-level trajectory at a point in time.

    ``latency_p50_s`` / ``latency_p95_s`` are computed over finished jobs'
    submit-to-terminal latency (queue wait included — that is what a
    client experiences); ``throughput_jobs_per_s`` over the window from
    the first submission to the latest terminal event.  ``shed`` counts
    admission rejections (:class:`~repro.utils.exceptions.ServiceOverloadedError`),
    which never become jobs.
    """

    submitted: int
    completed: int
    succeeded: int
    failed: int
    timed_out: int
    cancelled: int
    shed: int
    retries: int
    heals: int
    restarts: int
    result_cache_hits: int
    throughput_jobs_per_s: float
    latency_p50_s: float
    latency_p95_s: float
    cache: CacheStats
    jobs: tuple[JobRecord, ...]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    weight = position - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


class ServiceTelemetry:
    """Thread-safe accumulator behind :meth:`SimulationService.telemetry`."""

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._records: list[JobRecord] = []
        self._latencies: list[float] = []
        self._submitted = 0
        self._shed = 0
        self._first_submit: float | None = None
        self._last_finish: float | None = None

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1
            if self._first_submit is None:
                self._first_submit = self._clock()

    def record_shed(self) -> None:
        with self._lock:
            self._shed += 1

    def record_finished(self, job) -> None:
        """Fold a terminal job into the trajectory (exactly once per job)."""
        # Per-attempt counts: heals absorbed by attempts that later
        # *failed* (and were retried) must still show up here.
        heals = getattr(job, "heals", 0)
        restarts = getattr(job, "restarts", 0)
        record = JobRecord(
            job_id=job.id,
            scenario=job.request.scenario,
            label=job.request.label,
            status=job.status,
            attempts=len(job.attempts),
            retries=job.retries,
            heals=heals,
            restarts=restarts,
            queue_wait_s=job.queue_wait_s,
            total_s=(
                max(job.finished_at - job.submitted_at, 0.0)
                if job.finished_at is not None
                else 0.0
            ),
            from_result_cache=job.from_result_cache,
        )
        with self._lock:
            self._records.append(record)
            self._latencies.append(record.total_s)
            self._last_finish = self._clock()

    def snapshot(self, cache_stats: CacheStats | None = None) -> ServiceSnapshot:
        """Aggregate everything recorded so far (see :class:`ServiceSnapshot`)."""
        with self._lock:
            records = tuple(self._records)
            latencies = sorted(self._latencies)
            submitted = self._submitted
            shed = self._shed
            first = self._first_submit
            last = self._last_finish
        by_status = {status: 0 for status in ("succeeded", "failed", "timed_out", "cancelled")}
        for record in records:
            if record.status in by_status:
                by_status[record.status] += 1
        window = (last - first) if (first is not None and last is not None) else 0.0
        throughput = len(records) / window if window > 0 else 0.0
        if cache_stats is None:
            cache_stats = CacheStats(hits=0, misses=0, evictions=0, size=0, capacity=0)
        return ServiceSnapshot(
            submitted=submitted,
            completed=len(records),
            succeeded=by_status["succeeded"],
            failed=by_status["failed"],
            timed_out=by_status["timed_out"],
            cancelled=by_status["cancelled"],
            shed=shed,
            retries=sum(record.retries for record in records),
            heals=sum(record.heals for record in records),
            restarts=sum(record.restarts for record in records),
            result_cache_hits=sum(1 for record in records if record.from_result_cache),
            throughput_jobs_per_s=throughput,
            latency_p50_s=_percentile(latencies, 0.50),
            latency_p95_s=_percentile(latencies, 0.95),
            cache=cache_stats,
            jobs=records,
        )
