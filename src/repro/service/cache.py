"""LRU cache of compiled circuits with lease-based concurrent access.

Compiling a :class:`~repro.circuits.mna.MNASystem` is the per-request work
the service amortises across identical requests: stamp-pattern compilation,
batched-engine setup and (for sharded systems) forked worker pools.  The
cache keys entries by whatever identity string the caller derives — the
service uses ``scenario_fingerprint(scenario) + case label + compile
options``, so two requests hit the same entry exactly when they solve the
same physical problem.

Compiled systems are *not* thread-safe (solves share the engine's scratch
buffers), so the cache never hands the same system to two jobs at once:
:meth:`CompiledCircuitCache.lease` grants exclusive use for the duration of
a ``with`` block, and a second job leasing the same key blocks until the
first releases it.  Entries that are leased (or merely pinned while a
lease is being acquired) are never evicted; when every resident entry is
in use the cache temporarily overflows its capacity rather than closing a
system under a running solve, and trims back on the next release.

Eviction and :meth:`~CompiledCircuitCache.close` call ``close()`` on the
cached system (idempotent by contract), releasing worker pools and shared
memory — the no-zombie / no-leaked-shm invariant at service scope.

The build path is a :func:`~repro.resilience.faultinject.fault_site`
(``service.cache_build``), fired *before* the build runs so an injected
failure can never leave a half-built system resident.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..resilience.faultinject import fault_site
from ..utils.exceptions import ConfigurationError, ServiceError

__all__ = ["CacheStats", "CompiledCircuitCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`CompiledCircuitCache` at a point in time."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        """Total lease acquisitions served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a resident entry (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class _Entry:
    """One cached system: the value, its lease lock, and a pin count.

    ``pins`` counts jobs that hold or are about to acquire the lease; the
    eviction scan skips pinned entries so a system is never closed between
    a lookup and the lease acquisition (or mid-solve).
    """

    __slots__ = ("system", "lock", "pins")

    def __init__(self, system: Any) -> None:
        self.system = system
        self.lock = threading.Lock()
        self.pins = 0


class CompiledCircuitCache:
    """Thread-safe LRU cache of compiled circuits (see the module docstring)."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1 or int(capacity) != capacity:
            raise ConfigurationError(
                f"cache capacity must be a positive integer, got {capacity!r}"
            )
        self._capacity = int(capacity)
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._closed = False

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @contextmanager
    def lease(self, key: str, build: Callable[[], Any]) -> Iterator[Any]:
        """Exclusive use of the compiled system for ``key``; builds on miss.

        ``build()`` runs outside the registry lock (builds are slow), so
        two threads missing the same cold key may both build; the loser's
        system is closed immediately and the winner's is cached — wasted
        work, never a correctness problem.  The yielded system must not be
        used after the ``with`` block exits.
        """
        entry = self._acquire(key, build)
        try:
            yield entry.system
        finally:
            entry.lock.release()
            with self._lock:
                entry.pins -= 1
                evicted = self._collect_evictable_locked()
            self._close_all(evicted)

    def _acquire(self, key: str, build: Callable[[], Any]) -> _Entry:
        with self._lock:
            if self._closed:
                raise ServiceError("compiled-circuit cache is closed")
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                entry.pins += 1
                self._entries.move_to_end(key)
        if entry is None:
            fault_site("service.cache_build", key=key)
            system = build()
            duplicate = None
            with self._lock:
                if self._closed:
                    duplicate = system
                    evicted: list[Any] = []
                else:
                    entry = self._entries.get(key)
                    if entry is not None:
                        duplicate = system
                        entry.pins += 1
                        self._entries.move_to_end(key)
                    else:
                        self._misses += 1
                        entry = _Entry(system)
                        entry.pins = 1
                        self._entries[key] = entry
                    evicted = self._collect_evictable_locked()
            self._close_all(evicted)
            if duplicate is not None:
                self._close_system(duplicate)
            if entry is None:
                raise ServiceError("compiled-circuit cache is closed")
        entry.lock.acquire()
        return entry

    def _collect_evictable_locked(self) -> list[Any]:
        """Pop LRU entries past capacity that nobody holds; return their systems.

        Caller must hold ``self._lock``; the returned systems are closed
        *outside* it (closing may join worker processes).
        """
        evicted: list[Any] = []
        while len(self._entries) > self._capacity:
            victim_key = None
            for candidate_key, candidate in self._entries.items():
                if candidate.pins == 0 and not candidate.lock.locked():
                    victim_key = candidate_key
                    break
            if victim_key is None:
                break  # everything resident is in use; overflow until a release
            victim = self._entries.pop(victim_key)
            self._evictions += 1
            evicted.append(victim.system)
        return evicted

    @staticmethod
    def _close_system(system: Any) -> None:
        close = getattr(system, "close", None)
        if close is not None:
            close()

    def _close_all(self, systems: list[Any]) -> None:
        for system in systems:
            self._close_system(system)

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )

    def clear(self) -> int:
        """Evict every entry not currently in use; return how many were evicted."""
        with self._lock:
            evicted = []
            for key in [
                key
                for key, entry in self._entries.items()
                if entry.pins == 0 and not entry.lock.locked()
            ]:
                evicted.append(self._entries.pop(key).system)
                self._evictions += 1
        self._close_all(evicted)
        return len(evicted)

    def close(self) -> None:
        """Close every cached system and refuse further leases (idempotent).

        Waits for in-flight leases: each entry's lease lock is acquired
        before its system is closed, so a solve running on a leased system
        finishes before the system's pools are torn down.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            with entry.lock:
                self._close_system(entry.system)
