"""Deterministic fault injection for the solver stack.

Real solver failures — singular Jacobians, stalled Krylov solves, crashed
or hung forked workers, NaN device evaluations — are far too rare to
exercise in CI, so the recovery paths that handle them would otherwise ship
untested.  This module lets tests *schedule* those failures at named sites
in the production code:

>>> from repro.resilience import inject_faults, singular_jacobian
>>> with inject_faults(singular_jacobian(at_iteration=2)):
...     solver.solve()  # doctest: +SKIP

Production code marks injection points with :func:`fault_site`::

    fault_site("solver.linear_solve", iteration=iteration)

which is a no-op (one global read, no allocation) unless a plan is active,
so the hooks cost nothing in normal operation.  The registry is a plain
module global: forked worker processes inherit the active plan, which is
what lets tests inject ``worker.eval`` faults into children without any
IPC.  Injection is process-wide; the per-spec ``calls``/``fired`` counters
are guarded by a lock because some sites are visited from concurrent
threads (e.g. ``preconditioner.build`` under an eager
:class:`~repro.parallel.WorkerPool` fan-out) — a fault scheduled to fire
``count`` times fires exactly ``count`` times no matter how the visits
interleave.

Sites currently compiled into the stack:

=========================  ====================================================
site                       context keys
=========================  ====================================================
``solver.linear_solve``    ``iteration`` (MPDE Newton iterate, 0-based)
``solver.gmres``           ``preconditioner`` (active mode name)
``newton.linear_solve``    ``iteration`` (dense Newton iterate, 0-based)
``krylov.solve``           ``raise_on_failure`` (caller wants exceptions?)
``preconditioner.build``   ``kind`` (preconditioner mode name)
``worker.eval``            ``worker`` (shard index; runs in the child)
``mna.evaluate``           ``f`` (residual vector, mutable, poison in place)
=========================  ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..utils.exceptions import GMRESStagnationError, SingularMatrixError

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "active_fault_plan",
    "build_profile_specs",
    "fault_site",
    "inject_faults",
    "singular_jacobian",
    "gmres_stall",
    "worker_crash",
    "worker_hang",
    "nan_evaluation",
]


class FaultInjected(Exception):
    """Raised by injected faults that model *unclassified* errors.

    Most convenience faults raise the production exception type they
    emulate (``SingularMatrixError``, ``GMRESStagnationError``, ...) so the
    real handling paths are exercised; this type exists for tests that want
    a failure nothing in the stack claims to understand.
    """


@dataclass
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    site:
        Name of the :func:`fault_site` this fault attaches to.
    action:
        Callable invoked with the site's context dict when the fault fires.
        Raising an exception is the usual payload; mutating a context value
        (e.g. poisoning the ``f`` array of ``mna.evaluate``) also works.
    at_call:
        Fire starting from the Nth *matching* visit to the site (1-based).
        ``None`` means from the first.
    count:
        Maximum number of firings.  ``None`` means unlimited.
    predicate:
        Optional extra gate ``predicate(context) -> bool``; visits it
        rejects do not advance the call counter.
    """

    site: str
    action: Callable[[dict[str, Any]], None]
    at_call: int | None = None
    count: int | None = 1
    predicate: Callable[[dict[str, Any]], bool] | None = None
    calls: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def visit(self, context: dict[str, Any]) -> bool:
        """Record a matching visit; return True if the fault should fire.

        The ``calls``/``fired`` bookkeeping is atomic under ``_lock``: sites
        visited from concurrent threads (eager harmonic factorisation drives
        ``preconditioner.build`` from a thread fan-out) advance the counters
        without interleaving, so ``at_call``/``count`` schedules stay exact.
        The predicate runs outside the lock — it only reads the context.
        """
        if self.predicate is not None and not self.predicate(context):
            return False
        with self._lock:
            self.calls += 1
            if self.at_call is not None and self.calls < self.at_call:
                return False
            if self.count is not None and self.fired >= self.count:
                return False
            self.fired += 1
            return True


class FaultPlan:
    """The set of :class:`FaultSpec` objects currently armed."""

    def __init__(self, specs: tuple[FaultSpec, ...]) -> None:
        self.specs = specs

    def visit(self, site: str, context: dict[str, Any]) -> None:
        for spec in self.specs:
            if spec.site == site and spec.visit(context):
                spec.action(context)


#: The active plan, or ``None``.  A module global (not a contextvar) so
#: forked workers inherit it and ``fault_site`` stays one attribute read in
#: the common case.
_ACTIVE: FaultPlan | None = None


def active_fault_plan() -> FaultPlan | None:
    """Return the currently armed plan, or ``None``."""
    return _ACTIVE


def fault_site(site: str, **context: Any) -> None:
    """Production-code injection hook; no-op unless a plan is armed."""
    plan = _ACTIVE
    if plan is not None:
        plan.visit(site, context)


@contextmanager
def inject_faults(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Arm ``specs`` for the duration of the ``with`` block.

    Plans do not nest: arming a new plan while one is active replaces it
    for the block and restores the outer plan afterwards (the outer plan's
    counters keep their values).
    """
    global _ACTIVE
    previous = _ACTIVE
    plan = FaultPlan(tuple(specs))
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Convenience fault constructors
# ---------------------------------------------------------------------------


def singular_jacobian(
    *,
    at_iteration: int | None = None,
    count: int | None = 1,
    site: str = "solver.linear_solve",
) -> FaultSpec:
    """Inject a :class:`SingularMatrixError` from a Newton linear solve.

    ``at_iteration`` gates on the site's 0-based ``iteration`` context key
    (e.g. ``at_iteration=2`` emulates a Jacobian going singular at the
    third Newton iterate); ``None`` fires on any iterate.
    """

    def _raise(context: dict[str, Any]) -> None:
        iteration = context.get("iteration")
        raise SingularMatrixError(
            f"injected singular Jacobian (site={site!r}, iteration={iteration!r})"
        )

    predicate = None
    if at_iteration is not None:
        predicate = lambda ctx: ctx.get("iteration") == at_iteration  # noqa: E731
    return FaultSpec(site=site, action=_raise, count=count, predicate=predicate)


def gmres_stall(
    *,
    at_call: int | None = None,
    count: int | None = 1,
    site: str = "krylov.solve",
) -> FaultSpec:
    """Inject a stagnated GMRES solve (no progress over a restart cycle).

    The default site fires on *every* Krylov solve (including direct unit
    tests of :func:`~repro.linalg.krylov.gmres_solve`, which have no retry
    machinery above them); pass ``site="solver.gmres"`` to hit only the MPDE
    solver's GMRES linear solves, where the recovery ladder can absorb it.
    """

    def _raise(context: dict[str, Any]) -> None:
        raise GMRESStagnationError(
            "injected GMRES stagnation (no residual progress over a restart cycle)"
        )

    return FaultSpec(site=site, action=_raise, at_call=at_call, count=count)


def worker_crash(*, worker: int | None = None, count: int | None = 1) -> FaultSpec:
    """Kill a forked shard worker mid-evaluation (models a segfault/OOM kill).

    Fires inside the child process (the plan is inherited across ``fork``);
    ``os._exit`` skips all cleanup, exactly like a real crash, so the
    parent sees the reply pipe close.
    """

    def _die(context: dict[str, Any]) -> None:
        os._exit(17)

    predicate = None
    if worker is not None:
        predicate = lambda ctx: ctx.get("worker") == worker  # noqa: E731
    return FaultSpec(site="worker.eval", action=_die, count=count, predicate=predicate)


def worker_hang(*, hang_s: float = 60.0, count: int | None = 1) -> FaultSpec:
    """Make a forked shard worker sleep through its evaluation (models a hang).

    The sleep must exceed the configured ``worker_timeout_s`` for the
    watchdog to classify the worker as hung.
    """

    def _sleep(context: dict[str, Any]) -> None:
        time.sleep(hang_s)

    return FaultSpec(site="worker.eval", action=_sleep, count=count)


def nan_evaluation(*, count: int | None = 1, entry: int = 0) -> FaultSpec:
    """Poison a device-evaluation residual with NaN (models a bad model eval)."""

    def _poison(context: dict[str, Any]) -> None:
        f = context.get("f")
        if f is not None and np.size(f) > entry:
            f[entry] = np.nan

    return FaultSpec(site="mna.evaluate", action=_poison, count=count)


# ---------------------------------------------------------------------------
# Named CI profiles
# ---------------------------------------------------------------------------

#: Profiles selectable via the ``REPRO_FAULT_PROFILE`` environment variable
#: (comma-separated).  Each profile is *recoverable by design* — the suite
#: must still pass with it armed, proving the recovery paths end-to-end.
_PROFILES: dict[str, Callable[[], FaultSpec]] = {
    # First sharded worker evaluation crashes; the pool must fall back to
    # the serial path and the test must still see correct results.
    "worker_crash": lambda: worker_crash(count=1),
    # First MPDE-solver GMRES solve stalls; the recovery ladder must absorb
    # it.  Scoped to the solver-level site so direct unit tests of the
    # Krylov layer (which have no recovery machinery above them) still pass.
    "gmres_stall": lambda: gmres_stall(count=1, site="solver.gmres"),
    # First Newton linear solve hits a singular Jacobian; the ladder or the
    # analysis-level stepping fallbacks must recover.
    "singular_jacobian": lambda: singular_jacobian(count=1),
    # First worker evaluation hangs; the reply watchdog must time out (the
    # consuming pool's ``worker_timeout_s`` has to sit below the sleep),
    # tear the pool down without zombies or leaked shared memory, and fall
    # back to the serial path.
    "worker_hang": lambda: worker_hang(count=1),
}


def build_profile_specs(profile: str) -> tuple[FaultSpec, ...]:
    """Build fresh specs for a comma-separated profile string.

    Unknown names raise ``ValueError`` (catches typos in CI config).
    Returns new spec objects each call so per-test counters start at zero.
    """
    specs = []
    for name in profile.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            factory = _PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; known: {sorted(_PROFILES)}"
            ) from None
        specs.append(factory())
    return tuple(specs)
