"""Deterministic fault injection for the solver stack.

Real solver failures — singular Jacobians, stalled Krylov solves, crashed
or hung forked workers, NaN device evaluations — are far too rare to
exercise in CI, so the recovery paths that handle them would otherwise ship
untested.  This module lets tests *schedule* those failures at named sites
in the production code:

>>> from repro.resilience import inject_faults, singular_jacobian
>>> with inject_faults(singular_jacobian(at_iteration=2)):
...     solver.solve()  # doctest: +SKIP

Production code marks injection points with :func:`fault_site`::

    fault_site("solver.linear_solve", iteration=iteration)

which is a no-op (one global read, no allocation) unless a plan is active,
so the hooks cost nothing in normal operation.  The registry is a plain
module global: forked worker processes inherit the active plan, which is
what lets tests inject ``worker.eval`` faults into children without any
IPC.  Injection is process-wide; the per-spec ``calls``/``fired`` counters
are guarded by a lock because some sites are visited from concurrent
threads (e.g. ``preconditioner.build`` under an eager
:class:`~repro.parallel.WorkerPool` fan-out) — a fault scheduled to fire
``count`` times fires exactly ``count`` times no matter how the visits
interleave.

Sites currently compiled into the stack:

=========================  ====================================================
site                       context keys
=========================  ====================================================
``solver.linear_solve``    ``iteration`` (MPDE Newton iterate, 0-based)
``solver.gmres``           ``preconditioner`` (active mode name)
``newton.linear_solve``    ``iteration`` (dense Newton iterate, 0-based)
``krylov.solve``           ``raise_on_failure`` (caller wants exceptions?)
``preconditioner.build``   ``kind`` (preconditioner mode name)
``worker.eval``            ``worker`` (shard index; runs in the child)
``mna.evaluate``           ``f`` (residual vector, mutable, poison in place)
``service.cache_build``    ``key`` (compiled-circuit cache key being built)
``service.job_dispatch``   ``job``, ``case``, ``attempt`` (1-based attempt)
=========================  ====================================================
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from ..utils.exceptions import (
    GMRESStagnationError,
    SingularMatrixError,
    TransientServiceError,
)

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "active_fault_plan",
    "build_profile_specs",
    "cache_build_fault",
    "chaos_specs",
    "dispatch_fault",
    "fault_site",
    "inject_faults",
    "singular_jacobian",
    "gmres_stall",
    "worker_crash",
    "worker_hang",
    "nan_evaluation",
]


class FaultInjected(Exception):
    """Raised by injected faults that model *unclassified* errors.

    Most convenience faults raise the production exception type they
    emulate (``SingularMatrixError``, ``GMRESStagnationError``, ...) so the
    real handling paths are exercised; this type exists for tests that want
    a failure nothing in the stack claims to understand.
    """


@dataclass
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    site:
        Name of the :func:`fault_site` this fault attaches to.
    action:
        Callable invoked with the site's context dict when the fault fires.
        Raising an exception is the usual payload; mutating a context value
        (e.g. poisoning the ``f`` array of ``mna.evaluate``) also works.
    at_call:
        Fire starting from the Nth *matching* visit to the site (1-based).
        ``None`` means from the first.
    count:
        Maximum number of firings.  ``None`` means unlimited.
    predicate:
        Optional extra gate ``predicate(context) -> bool``; visits it
        rejects do not advance the call counter.
    shared:
        Keep the ``calls``/``fired`` counters in fork-shared memory
        (``multiprocessing.Value``) instead of per-process ints.  Essential
        for child-firing faults under *supervised healing*: a plain-int
        ``count=1`` crash would re-fire in every freshly re-forked worker
        generation (each child inherits the pre-crash counter state), so
        "one crash" would mean "one crash per generation" and no pool could
        ever heal.  With ``shared=True`` the firing is recorded where every
        generation sees it, so ``count=1`` means one firing globally.
    """

    site: str
    action: Callable[[dict[str, Any]], None]
    at_call: int | None = None
    count: int | None = 1
    predicate: Callable[[dict[str, Any]], bool] | None = None
    shared: bool = False
    calls: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    _shared_counters: Any = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.shared:
            import multiprocessing

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - no fork on this platform
                context = multiprocessing
            # [calls, fired] in fork-shared memory; the Array's embedded
            # lock makes the visit bookkeeping atomic across processes.
            self._shared_counters = context.Array("q", [0, 0])

    def visit(self, context: dict[str, Any]) -> bool:
        """Record a matching visit; return True if the fault should fire.

        The ``calls``/``fired`` bookkeeping is atomic under ``_lock`` (or
        the shared Array's cross-process lock): sites visited from
        concurrent threads (eager harmonic factorisation drives
        ``preconditioner.build`` from a thread fan-out) advance the counters
        without interleaving, so ``at_call``/``count`` schedules stay exact.
        The predicate runs outside the lock — it only reads the context.
        """
        if self.predicate is not None and not self.predicate(context):
            return False
        if self._shared_counters is not None:
            with self._shared_counters.get_lock():
                self._shared_counters[0] += 1
                self.calls = int(self._shared_counters[0])
                if self.at_call is not None and self.calls < self.at_call:
                    return False
                if self.count is not None and self._shared_counters[1] >= self.count:
                    return False
                self._shared_counters[1] += 1
                self.fired = int(self._shared_counters[1])
                return True
        with self._lock:
            self.calls += 1
            if self.at_call is not None and self.calls < self.at_call:
                return False
            if self.count is not None and self.fired >= self.count:
                return False
            self.fired += 1
            return True

    def observed_calls(self) -> int:
        """Visits observed across every process (for ``shared`` specs the
        plain ``calls`` attribute only reflects *this* process's visits —
        a crash that fired in a forked child never updates the parent's
        mirror)."""
        if self._shared_counters is not None:
            return int(self._shared_counters[0])
        return self.calls

    def observed_fired(self) -> int:
        """Firings observed across every process (see :meth:`observed_calls`)."""
        if self._shared_counters is not None:
            return int(self._shared_counters[1])
        return self.fired


class FaultPlan:
    """The set of :class:`FaultSpec` objects currently armed."""

    def __init__(self, specs: tuple[FaultSpec, ...]) -> None:
        self.specs = specs

    def visit(self, site: str, context: dict[str, Any]) -> None:
        for spec in self.specs:
            if spec.site == site and spec.visit(context):
                spec.action(context)


#: The active plan, or ``None``.  A module global (not a contextvar) so
#: forked workers inherit it and ``fault_site`` stays one attribute read in
#: the common case.
_ACTIVE: FaultPlan | None = None


def active_fault_plan() -> FaultPlan | None:
    """Return the currently armed plan, or ``None``."""
    return _ACTIVE


def fault_site(site: str, **context: Any) -> None:
    """Production-code injection hook; no-op unless a plan is armed."""
    plan = _ACTIVE
    if plan is not None:
        plan.visit(site, context)


@contextmanager
def inject_faults(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Arm ``specs`` for the duration of the ``with`` block.

    Plans do not nest: arming a new plan while one is active replaces it
    for the block and restores the outer plan afterwards (the outer plan's
    counters keep their values).
    """
    global _ACTIVE
    previous = _ACTIVE
    plan = FaultPlan(tuple(specs))
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Convenience fault constructors
# ---------------------------------------------------------------------------


def singular_jacobian(
    *,
    at_iteration: int | None = None,
    count: int | None = 1,
    site: str = "solver.linear_solve",
) -> FaultSpec:
    """Inject a :class:`SingularMatrixError` from a Newton linear solve.

    ``at_iteration`` gates on the site's 0-based ``iteration`` context key
    (e.g. ``at_iteration=2`` emulates a Jacobian going singular at the
    third Newton iterate); ``None`` fires on any iterate.
    """

    def _raise(context: dict[str, Any]) -> None:
        iteration = context.get("iteration")
        raise SingularMatrixError(
            f"injected singular Jacobian (site={site!r}, iteration={iteration!r})"
        )

    predicate = None
    if at_iteration is not None:
        predicate = lambda ctx: ctx.get("iteration") == at_iteration  # noqa: E731
    return FaultSpec(site=site, action=_raise, count=count, predicate=predicate)


def gmres_stall(
    *,
    at_call: int | None = None,
    count: int | None = 1,
    site: str = "krylov.solve",
) -> FaultSpec:
    """Inject a stagnated GMRES solve (no progress over a restart cycle).

    The default site fires on *every* Krylov solve (including direct unit
    tests of :func:`~repro.linalg.krylov.gmres_solve`, which have no retry
    machinery above them); pass ``site="solver.gmres"`` to hit only the MPDE
    solver's GMRES linear solves, where the recovery ladder can absorb it.
    """

    def _raise(context: dict[str, Any]) -> None:
        raise GMRESStagnationError(
            "injected GMRES stagnation (no residual progress over a restart cycle)"
        )

    return FaultSpec(site=site, action=_raise, at_call=at_call, count=count)


def _worker_predicate(worker: int | None, role: str | None):
    """Predicate matching ``worker.eval`` context by worker index and/or pool role.

    ``role`` distinguishes the two worker families that visit the site:
    shard evaluators pass ``role="shard"`` and resident factor workers pass
    ``role="factor"``.
    """
    if worker is None and role is None:
        return None

    def _match(ctx: dict[str, Any]) -> bool:
        if worker is not None and ctx.get("worker") != worker:
            return False
        if role is not None and ctx.get("role") != role:
            return False
        return True

    return _match


def worker_crash(
    *,
    worker: int | None = None,
    role: str | None = None,
    at_call: int | None = None,
    count: int | None = 1,
) -> FaultSpec:
    """Kill a forked shard worker mid-evaluation (models a segfault/OOM kill).

    Fires inside the child process (the plan is inherited across ``fork``);
    ``os._exit`` skips all cleanup, exactly like a real crash, so the
    parent sees the reply pipe close.  The spec's counters live in
    fork-shared memory (``shared=True``): ``count=1`` means one crash
    *globally*, so a supervised pool restart gets a healthy new generation
    instead of one that inherits a not-yet-fired crash and dies again —
    and ``at_call`` schedules against the global visit sequence.
    ``role="shard"`` / ``role="factor"`` targets one worker family (shard
    evaluators vs. resident factor workers) when both pools are live.
    """

    def _die(context: dict[str, Any]) -> None:
        os._exit(17)

    return FaultSpec(
        site="worker.eval",
        action=_die,
        at_call=at_call,
        count=count,
        predicate=_worker_predicate(worker, role),
        shared=True,
    )


def worker_hang(
    *,
    hang_s: float = 60.0,
    worker: int | None = None,
    role: str | None = None,
    at_call: int | None = None,
    count: int | None = 1,
) -> FaultSpec:
    """Make a forked shard worker sleep through its evaluation (models a hang).

    The sleep must exceed the configured ``worker_timeout_s`` for the
    watchdog to classify the worker as hung.  Counters are fork-shared
    (``shared=True``) like :func:`worker_crash`, so one scheduled hang
    fires once globally and a supervised restart can heal past it.
    ``worker`` / ``role`` filter by worker index and pool family as in
    :func:`worker_crash`.
    """

    def _sleep(context: dict[str, Any]) -> None:
        time.sleep(hang_s)

    return FaultSpec(
        site="worker.eval",
        action=_sleep,
        at_call=at_call,
        count=count,
        predicate=_worker_predicate(worker, role),
        shared=True,
    )


def nan_evaluation(
    *,
    at_call: int | None = None,
    count: int | None = 1,
    entry: int = 0,
    min_points: int = 0,
) -> FaultSpec:
    """Poison a device-evaluation residual with NaN (models a bad model eval).

    ``min_points`` gates the fault on batched evaluations of at least that
    many grid points — the chaos profile uses it to hit only the multi-time
    / collocation solves (which own recovery machinery for non-finite
    residuals) while sparing single-point DC / transient evaluations that
    have no retry ladder above them.
    """

    def _poison(context: dict[str, Any]) -> None:
        f = context.get("f")
        if f is not None and np.size(f) > entry:
            f[entry] = np.nan

    predicate = None
    if min_points > 0:
        predicate = (
            lambda ctx: ctx.get("f") is not None
            and np.ndim(ctx["f"]) >= 1
            and np.shape(ctx["f"])[0] >= min_points
        )  # noqa: E731
    return FaultSpec(
        site="mna.evaluate",
        action=_poison,
        at_call=at_call,
        count=count,
        predicate=predicate,
    )


def cache_build_fault(*, at_call: int | None = None, count: int | None = 1) -> FaultSpec:
    """Fail a compiled-circuit cache build (models an OOM or compile race).

    Fires at the ``service.cache_build`` site of the simulation service's
    :class:`~repro.service.cache.CompiledCircuitCache`, *before* the build
    runs, so no half-built system is ever cached.  Raises
    :class:`TransientServiceError` — classified as the retryable
    ``"service"`` kind, so the job layer's retry budget (not the solver
    ladder) absorbs it.
    """

    def _raise(context: dict[str, Any]) -> None:
        raise TransientServiceError(
            f"injected cache-build failure (key={context.get('key')!r})"
        )

    return FaultSpec(
        site="service.cache_build", action=_raise, at_call=at_call, count=count
    )


def dispatch_fault(*, at_call: int | None = None, count: int | None = 1) -> FaultSpec:
    """Fail a job dispatch (models a lost work item / executor hiccup).

    Fires at the ``service.job_dispatch`` site, visited once per solve
    attempt of every job, before the attempt touches the cache or the
    solver.  Raises :class:`TransientServiceError` so the attempt is
    retried against the job's backoff budget.
    """

    def _raise(context: dict[str, Any]) -> None:
        raise TransientServiceError(
            f"injected dispatch failure (job={context.get('job')!r}, "
            f"case={context.get('case')!r}, attempt={context.get('attempt')!r})"
        )

    return FaultSpec(
        site="service.job_dispatch", action=_raise, at_call=at_call, count=count
    )


# ---------------------------------------------------------------------------
# Randomized chaos schedules
# ---------------------------------------------------------------------------


def chaos_specs(
    seed: int,
    *,
    n_faults: int | None = None,
    include_hangs: bool = False,
    include_service: bool = False,
    hang_s: float = 30.0,
) -> tuple[FaultSpec, ...]:
    """Build a seeded random fault schedule for chaos-soak runs.

    Draws ``n_faults`` (default: 1–3, seed-dependent) faults across the
    registered sites — forked-worker crashes (``worker.eval``), solver-level
    GMRES stalls (``solver.gmres``), singular Newton linear solves
    (``solver.linear_solve``) and NaN-poisoned batched evaluations
    (``mna.evaluate``) — each with a randomized ``at_call`` / iteration
    offset and ``count=1``.  Every draw is *recoverable by design*: crashes
    heal through the pool supervisor, stalls and singular solves through
    the recovery ladder, NaN poison (gated to multi-point evaluations)
    through the ladder's damping/retry rungs — so a suite run under a chaos
    schedule must still pass, and a chaos-soak loop can assert the answers
    against the fault-free solve.

    Hangs are opt-in (``include_hangs=True``): a hang only manifests as a
    fault when the consuming pool's ``worker_timeout_s`` sits *below*
    ``hang_s``, and it costs real wall-clock time, so the CI-wide
    ``chaos:<seed>`` profile leaves them out while the dedicated soak
    harness (which pins short worker timeouts) opts in.

    Service-layer faults (cache builds, job dispatches — recovered by the
    job retry budget of :mod:`repro.service` rather than the solver ladder)
    are likewise opt-in via ``include_service=True``: the opt-in keeps the
    kind list — and therefore every existing seeded schedule — unchanged
    for consumers that predate the service layer.  ``chaos-service:<seed>``
    is the corresponding :func:`build_profile_specs` spelling.

    The same ``seed`` always yields the same schedule (``numpy``
    ``default_rng`` determinism), so a failing chaos run is replayable.
    """
    rng = np.random.default_rng(seed)
    kinds = ["worker_crash", "gmres_stall", "singular_jacobian", "nan_evaluation"]
    if include_hangs:
        kinds.append("worker_hang")
    if include_service:
        kinds.extend(["cache_build", "dispatch"])
    if n_faults is None:
        n_faults = int(rng.integers(1, 4))
    if n_faults < 1:
        raise ValueError(f"n_faults must be >= 1, got {n_faults}")
    specs: list[FaultSpec] = []
    for _ in range(n_faults):
        kind = kinds[int(rng.integers(len(kinds)))]
        at_call = int(rng.integers(1, 4))
        if kind == "worker_crash":
            specs.append(worker_crash(at_call=at_call, count=1))
        elif kind == "worker_hang":
            specs.append(worker_hang(hang_s=hang_s, at_call=at_call, count=1))
        elif kind == "gmres_stall":
            specs.append(gmres_stall(at_call=at_call, count=1, site="solver.gmres"))
        elif kind == "singular_jacobian":
            specs.append(
                singular_jacobian(at_iteration=int(rng.integers(0, 3)), count=1)
            )
        elif kind == "cache_build":
            specs.append(cache_build_fault(at_call=at_call, count=1))
        elif kind == "dispatch":
            specs.append(dispatch_fault(at_call=at_call, count=1))
        else:
            specs.append(nan_evaluation(at_call=at_call, count=1, min_points=4))
    return tuple(specs)


# ---------------------------------------------------------------------------
# Named CI profiles
# ---------------------------------------------------------------------------

#: Profiles selectable via the ``REPRO_FAULT_PROFILE`` environment variable
#: (comma-separated).  Each profile is *recoverable by design* — the suite
#: must still pass with it armed, proving the recovery paths end-to-end.
_PROFILES: dict[str, Callable[[], FaultSpec]] = {
    # First sharded worker evaluation crashes; the pool supervisor must
    # heal it (restart + parity probe) — or, once the restart budget is
    # spent, fall back to the serial path — and the test must still see
    # correct results either way.
    "worker_crash": lambda: worker_crash(count=1),
    # First MPDE-solver GMRES solve stalls; the recovery ladder must absorb
    # it.  Scoped to the solver-level site so direct unit tests of the
    # Krylov layer (which have no recovery machinery above them) still pass.
    "gmres_stall": lambda: gmres_stall(count=1, site="solver.gmres"),
    # First Newton linear solve hits a singular Jacobian; the ladder or the
    # analysis-level stepping fallbacks must recover.
    "singular_jacobian": lambda: singular_jacobian(count=1),
    # First worker evaluation hangs; the reply watchdog must time out (the
    # consuming pool's ``worker_timeout_s`` has to sit below the sleep),
    # tear the pool down without zombies or leaked shared memory, and fall
    # back to the serial path.
    "worker_hang": lambda: worker_hang(count=1),
    # First compiled-circuit cache build fails; the simulation service's
    # job retry budget must rebuild and complete the request.  Outside the
    # service layer the site is never visited, so the profile is inert for
    # plain solver tests.
    "cache_build": lambda: cache_build_fault(count=1),
    # First job dispatch fails; the job layer must back off and retry.
    "dispatch": lambda: dispatch_fault(count=1),
}


def build_profile_specs(profile: str) -> tuple[FaultSpec, ...]:
    """Build fresh specs for a comma-separated profile string.

    Besides the named profiles, ``chaos:<seed>`` expands to the seeded
    random schedule of :func:`chaos_specs` — the CI ``tier1-chaos`` job
    arms one per test, so the whole suite soaks under (replayable) random
    recoverable faults — and ``chaos-service:<seed>`` to the same schedule
    with the service-layer fault kinds included (the ``tier1-service``
    job's profile).  Unknown names raise ``ValueError`` (catches typos in
    CI config).  Returns new spec objects each call so per-test counters
    start at zero.
    """
    specs = []
    for name in profile.split(","):
        name = name.strip()
        if not name:
            continue
        if name.startswith(("chaos:", "chaos-service:")):
            kind, _, tail = name.partition(":")
            try:
                seed = int(tail)
            except ValueError:
                raise ValueError(
                    f"chaos profile needs an integer seed, got {name!r}"
                ) from None
            specs.extend(chaos_specs(seed, include_service=(kind == "chaos-service")))
            continue
        try:
            factory = _PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; known: "
                f"{sorted(_PROFILES)}, 'chaos:<seed>' or 'chaos-service:<seed>'"
            ) from None
        specs.append(factory())
    return tuple(specs)
