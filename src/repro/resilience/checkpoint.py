"""Crash-consistent checkpoint/resume for long solves.

A :class:`~repro.utils.exceptions.DeadlineExceededError` (PR 6) or a killed
process used to discard all Newton progress — every failed request restarted
from zero.  This module makes solve progress durable instead:

* :class:`SolveCheckpoint` snapshots the accepted Newton iterate, a
  fingerprint of the problem/options it belongs to, the chord-Newton cache
  state needed for *bitwise* resume, the recovery trace and a JSON-able
  partial-statistics snapshot — taken at iteration boundaries only, so a
  checkpoint is always a consistent point on the Newton trajectory, never a
  half-updated state.
* Checkpoints are always kept **in memory** (attached to the ``checkpoint``
  attribute of deadline / exhausted-ladder failures); with
  ``checkpoint_path=`` set they are additionally **persisted** as ``.npz``
  files via write-to-temporary + ``os.replace`` — the POSIX atomic-rename
  pattern, so a crash mid-write leaves either the previous consistent file
  or the new one, never a torn mix.
* ``solve_mpde(resume_from=...)`` (and the PSS / two-tone-HB front ends)
  :meth:`~SolveCheckpoint.validate` the fingerprint and continue from the
  stored iterate.  Because the Newton step is a pure function of the
  iterate in the direct and cheap-rebuild-preconditioner modes (and the
  chord state travels with the checkpoint), a deadline-split solve lands
  **bit-for-bit** on the uninterrupted solution there; the cached-ILU GMRES
  mode resumes to the same answer within the Newton tolerance (its cache
  history is intentionally not part of the solve's mathematical state).

Like the rest of :mod:`repro.resilience`, this module is leaf-level
(stdlib + numpy + ``repro.utils`` only).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..utils.exceptions import CheckpointError

__all__ = ["SolveCheckpoint", "solve_fingerprint"]

#: Format version stamped into persisted checkpoints; bumped on layout
#: changes so an old file fails loudly instead of deserialising garbage.
_FORMAT = 1


def solve_fingerprint(kind: str, **parts: Any) -> str:
    """Hash the identity of a solve: circuit, grid, discretisation, solver.

    ``kind`` names the front end (``"mpde"``, ``"pss"``); ``parts`` are the
    problem/options values that change the answer a resumed iterate
    converges to.  The hash is over a canonical JSON rendering (sorted
    keys, ``repr`` for non-JSON values — float ``repr`` round-trips
    exactly), so equality means "same solve", not "same object".
    """
    canonical = json.dumps(
        {"kind": kind, **parts}, sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass
class SolveCheckpoint:
    """A consistent snapshot of an interrupted solve, resumable later.

    Attributes
    ----------
    fingerprint:
        :func:`solve_fingerprint` of the problem/options this iterate
        belongs to.  :meth:`validate` refuses a mismatch — resuming into a
        different circuit, grid or discretisation would converge to the
        wrong problem's answer.
    stage:
        The solve stage that recorded the snapshot (``"newton"``,
        ``"collocation"``, ...).
    iterate:
        The accepted iterate (flat, as the recording solve laid it out).
    newton_iterations:
        Accepted Newton iterations completed up to this snapshot.
    residual_norm:
        Residual infinity-norm at the snapshot iterate.
    chord_state:
        ``None`` outside chord-Newton mode; otherwise the chord cache state
        needed for bitwise resume: ``{"factored_at": ndarray`` (the iterate
        the resident LU was factored at), ``"baseline"``/``"last"``
        (adaptive-refresh iteration counters, ``None`` when unset),
        ``"just_built"``/``"stale"`` (refresh flags)``}``.  Refactoring the
        same matrix data is bitwise deterministic, so restoring this state
        reproduces the uninterrupted trajectory exactly.
    recovery_trace:
        JSON-able copy of the recovery attempts recorded up to the
        snapshot (:class:`~repro.resilience.taxonomy.RecoveryAttempt`
        fields as dicts after a round trip through persistence).
    stats:
        JSON-able snapshot of the partial solve statistics at the
        snapshot (informational; a resumed solve starts fresh counters).
    """

    fingerprint: str
    stage: str
    iterate: np.ndarray
    newton_iterations: int = 0
    residual_norm: float = float("inf")
    chord_state: dict | None = None
    recovery_trace: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    # -- validation --------------------------------------------------------
    def validate(self, expected_fingerprint: str) -> None:
        """Refuse to resume into a solve this checkpoint does not belong to."""
        if self.fingerprint != expected_fingerprint:
            raise CheckpointError(
                "checkpoint fingerprint mismatch: the checkpoint was recorded "
                f"for solve {self.fingerprint[:12]}... but is being resumed "
                f"into solve {expected_fingerprint[:12]}... — circuit, grid, "
                "discretisation or solver configuration differ, so the "
                "stored iterate belongs to a different problem"
            )

    # -- persistence -------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Persist atomically: write ``<path>.tmp``, fsync, rename over ``path``.

        ``os.replace`` is atomic on POSIX (same directory, same
        filesystem), so readers only ever observe a complete previous or
        complete new checkpoint.
        """
        path = os.fspath(path)
        meta = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "stage": self.stage,
            "newton_iterations": int(self.newton_iterations),
            "residual_norm": float(self.residual_norm),
            "chord": None
            if self.chord_state is None
            else {
                "baseline": self.chord_state.get("baseline"),
                "last": self.chord_state.get("last"),
                "just_built": bool(self.chord_state.get("just_built", False)),
                "stale": bool(self.chord_state.get("stale", False)),
            },
            "recovery_trace": _jsonable(self.recovery_trace),
            "stats": _jsonable(self.stats),
        }
        arrays = {
            "meta": np.array(json.dumps(meta)),
            "iterate": np.asarray(self.iterate),
        }
        if self.chord_state is not None:
            arrays["chord_factored_at"] = np.asarray(self.chord_state["factored_at"])
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SolveCheckpoint":
        """Load a persisted checkpoint; any defect raises :class:`CheckpointError`."""
        path = os.fspath(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                if meta.get("format") != _FORMAT:
                    raise CheckpointError(
                        f"checkpoint {path!r} has format "
                        f"{meta.get('format')!r}, expected {_FORMAT!r}"
                    )
                iterate = np.array(data["iterate"], copy=True)
                chord_meta = meta.get("chord")
                chord_state = None
                if chord_meta is not None:
                    chord_state = {
                        "factored_at": np.array(data["chord_factored_at"], copy=True),
                        "baseline": chord_meta.get("baseline"),
                        "last": chord_meta.get("last"),
                        "just_built": bool(chord_meta.get("just_built", False)),
                        "stale": bool(chord_meta.get("stale", False)),
                    }
        except CheckpointError:
            raise
        except Exception as exc:  # noqa: BLE001 - every load defect maps to CheckpointError
            raise CheckpointError(
                f"checkpoint {path!r} could not be loaded "
                f"({type(exc).__name__}: {exc}); the file is missing, "
                "truncated or corrupt"
            ) from exc
        return cls(
            fingerprint=str(meta["fingerprint"]),
            stage=str(meta["stage"]),
            iterate=iterate,
            newton_iterations=int(meta["newton_iterations"]),
            residual_norm=float(meta["residual_norm"]),
            chord_state=chord_state,
            recovery_trace=list(meta.get("recovery_trace", [])),
            stats=dict(meta.get("stats", {})),
        )
