"""Structured terminal-failure diagnostics.

When a solve fails for good, "Newton did not converge" is not actionable.
This module localises the failure: NaN/Inf entries and the dominant
residual rows are mapped back to *unknown names* (node voltages, branch
currents) and — via the compiled stamp patterns of
:class:`~repro.circuits.mna.MNASystem` — to the *device instances* that
stamp those rows.  The result is a :class:`FailureDiagnostics` payload
attached to the raised exception's ``diagnostics`` attribute
(:func:`attach_diagnostics`), so callers and service layers can log or
surface it without parsing message strings.

Multi-time (MPDE) residuals are defined over a ``P x n`` collocation grid;
grid rows fold back onto the ``n`` base unknowns, and the report counts how
many grid points implicate each unknown instead of listing thousands of
grid rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FailureDiagnostics",
    "attach_diagnostics",
    "build_failure_diagnostics",
]

#: How many worst offenders each category reports.
_TOP_K = 5


@dataclass(frozen=True)
class FailureDiagnostics:
    """Localised post-mortem of a terminal solve failure.

    Attributes
    ----------
    failure_kind:
        Classification from
        :func:`~repro.resilience.taxonomy.classify_failure`.
    residual_norm:
        Max-norm of the final residual (``nan`` if non-finite entries
        poisoned it).
    non_finite_unknowns:
        Names of base unknowns with NaN/Inf in the residual or iterate,
        each paired with the number of grid points affected (1 for
        non-grid solves).  Worst (most affected) first, top-:data:`_TOP_K`.
    dominant_unknowns:
        ``(name, |residual|)`` for the largest-magnitude finite residual
        rows, folded to base unknowns, largest first.
    suspect_devices:
        Device instance names that stamp the offending rows (non-finite
        rows if any, else the dominant ones), in stamp order.
    grid_shape:
        ``(P, n)`` for multi-time solves, ``None`` for plain ones.
    """

    failure_kind: str
    residual_norm: float
    non_finite_unknowns: tuple[tuple[str, int], ...] = ()
    dominant_unknowns: tuple[tuple[str, float], ...] = ()
    suspect_devices: tuple[str, ...] = ()
    grid_shape: tuple[int, int] | None = field(default=None)

    def summary(self) -> str:
        """One-line human-readable digest for log messages."""
        parts = [f"kind={self.failure_kind}", f"|F|max={self.residual_norm:.3g}"]
        if self.non_finite_unknowns:
            names = ", ".join(
                f"{name} ({hits} pts)" if hits > 1 else name
                for name, hits in self.non_finite_unknowns
            )
            parts.append(f"non-finite at: {names}")
        elif self.dominant_unknowns:
            names = ", ".join(
                f"{name} ({value:.3g})" for name, value in self.dominant_unknowns
            )
            parts.append(f"dominant residual at: {names}")
        if self.suspect_devices:
            parts.append(f"suspect devices: {', '.join(self.suspect_devices)}")
        return "; ".join(parts)


def _fold_rows(size: int, n: int) -> tuple[int, int] | None:
    """Return ``(P, n)`` if ``size`` is a whole multi-time grid, else None."""
    if n > 0 and size > n and size % n == 0:
        return size // n, n
    return None


def build_failure_diagnostics(
    system,
    x,
    residual,
    failure_kind: str,
) -> FailureDiagnostics | None:
    """Localise a failure against an MNA system.

    Parameters
    ----------
    system:
        Object exposing ``unknown_names`` (tuple of ``n`` names) and,
        optionally, ``residual_row_owners()`` (per-row device-name tuples);
        :class:`~repro.circuits.mna.MNASystem` provides both.  ``None``
        (or a system without names) yields ``None`` — diagnostics are
        best-effort and never mask the original failure.
    x, residual:
        Final iterate and residual.  Sizes must be ``n`` or ``P * n``
        (grid layout: point-major, row ``p * n + j`` is unknown ``j`` at
        grid point ``p``).  ``None`` entries are tolerated.
    failure_kind:
        Classification string stored on the payload.
    """
    names = getattr(system, "unknown_names", None)
    if not names:
        return None
    n = len(names)

    res = None if residual is None else np.asarray(residual, dtype=float).ravel()
    vec = None if x is None else np.asarray(x, dtype=float).ravel()

    grid_shape = None
    for arr in (res, vec):
        if arr is not None and arr.size != n:
            grid_shape = _fold_rows(arr.size, n)
            if grid_shape is None:
                return None  # layout we don't understand: stay silent
            break

    # --- non-finite localisation (residual first, iterate as fallback) ---
    nonfinite_hits = np.zeros(n, dtype=int)
    for arr in (res, vec):
        if arr is None:
            continue
        bad = ~np.isfinite(arr)
        if not bad.any():
            continue
        idx = np.nonzero(bad)[0] % n
        nonfinite_hits += np.bincount(idx, minlength=n)
    bad_order = np.argsort(nonfinite_hits)[::-1]
    non_finite = tuple(
        (names[j], int(nonfinite_hits[j]))
        for j in bad_order[:_TOP_K]
        if nonfinite_hits[j] > 0
    )

    # --- dominant finite residual rows, folded to base unknowns ---
    dominant: tuple[tuple[str, float], ...] = ()
    residual_norm = float("nan")
    if res is not None and res.size:
        finite = np.where(np.isfinite(res), np.abs(res), 0.0)
        if np.isfinite(res).all():
            residual_norm = float(np.max(np.abs(res))) if res.size else 0.0
        per_unknown = finite.reshape(-1, n).max(axis=0) if finite.size > n else finite
        order = np.argsort(per_unknown)[::-1]
        dominant = tuple(
            (names[j], float(per_unknown[j]))
            for j in order[:_TOP_K]
            if per_unknown[j] > 0.0
        )

    # --- device attribution via compiled stamp patterns ---
    suspect_rows = [j for j, _ in (non_finite or dominant)]
    suspects: tuple[str, ...] = ()
    owners_fn = getattr(system, "residual_row_owners", None)
    if owners_fn is not None and suspect_rows:
        try:
            owners = owners_fn()
        except Exception:  # best-effort: never mask the original failure
            owners = None
        if owners:
            name_to_row = {name: j for j, name in enumerate(names)}
            seen: list[str] = []
            for unknown in suspect_rows:
                row = name_to_row.get(unknown) if isinstance(unknown, str) else unknown
                if row is None or row >= len(owners):
                    continue
                for device in owners[row]:
                    if device not in seen:
                        seen.append(device)
            suspects = tuple(seen[: 2 * _TOP_K])

    return FailureDiagnostics(
        failure_kind=failure_kind,
        residual_norm=residual_norm,
        non_finite_unknowns=non_finite,
        dominant_unknowns=dominant,
        suspect_devices=suspects,
        grid_shape=grid_shape,
    )


def attach_diagnostics(exc: BaseException, diagnostics) -> BaseException:
    """Attach a payload to ``exc.diagnostics`` (best-effort) and return it."""
    if diagnostics is not None:
        try:
            exc.diagnostics = diagnostics
        except Exception:
            pass
    return exc
