"""Solver resilience layer: taxonomy, deadlines, diagnostics, fault injection.

The solves in this package fail for many distinct reasons — Newton
divergence on hard starts, singular or ill-conditioned Jacobians, GMRES
stagnation, degraded preconditioners, forked-worker crashes and hangs.
This subpackage gives those failures a single structured treatment:

* :mod:`~repro.resilience.taxonomy` — an enumerated failure model
  (:func:`~repro.resilience.taxonomy.classify_failure`) and the
  :class:`~repro.resilience.taxonomy.RecoveryAttempt` records that make up
  ``MPDEStats.recovery_trace``.  The escalation ladder itself is driven by
  :class:`~repro.utils.options.RecoveryPolicy` inside
  :class:`~repro.core.solver.MPDESolver`.
* :mod:`~repro.resilience.deadline` — cooperative per-solve deadlines
  (:class:`~repro.resilience.deadline.Deadline`), checked at iteration
  boundaries and raising
  :class:`~repro.utils.exceptions.DeadlineExceededError` with partial
  statistics attached.
* :mod:`~repro.resilience.diagnostics` — terminal-failure localisation:
  NaN/Inf and dominant residual entries mapped back to node names and
  device instances (:class:`~repro.resilience.diagnostics.FailureDiagnostics`),
  attached to the raised exception's ``diagnostics`` attribute.
* :mod:`~repro.resilience.faultinject` — a deterministic fault-injection
  registry (:func:`~repro.resilience.faultinject.inject_faults`) so every
  recovery rung and watchdog is exercised by ``tests/test_resilience.py``
  instead of waiting for rare real failures, plus seeded random chaos
  schedules (:func:`~repro.resilience.faultinject.chaos_specs`) for the
  soak harness.
* :mod:`~repro.resilience.supervisor` — supervised self-healing of the
  forked worker pools (:class:`~repro.resilience.supervisor.PoolSupervisor`
  driven by :class:`~repro.utils.options.RestartPolicy`): restart with
  exponential backoff, parity health-probe, sticky-serial only once the
  restart budget is exhausted, every step on
  ``MPDEStats.supervisor_trace``.
* :mod:`~repro.resilience.checkpoint` — crash-consistent
  checkpoint/resume
  (:class:`~repro.resilience.checkpoint.SolveCheckpoint`): iteration-
  boundary snapshots of the Newton iterate (in-memory always, atomic-rename
  ``.npz`` persistence with ``checkpoint_path=``), fingerprint-validated
  resume via ``solve_mpde(resume_from=...)``.

The modules are deliberately leaf-level (stdlib + numpy + ``repro.utils``
only) so every layer of the solver stack can import them.
"""

from .checkpoint import SolveCheckpoint, solve_fingerprint
from .deadline import Deadline
from .diagnostics import (
    FailureDiagnostics,
    attach_diagnostics,
    build_failure_diagnostics,
)
from .faultinject import (
    FaultInjected,
    FaultSpec,
    active_fault_plan,
    build_profile_specs,
    cache_build_fault,
    chaos_specs,
    dispatch_fault,
    fault_site,
    gmres_stall,
    inject_faults,
    nan_evaluation,
    singular_jacobian,
    worker_crash,
    worker_hang,
)
from .supervisor import PoolSupervisor, RestartPolicy, SupervisorEvent
from .taxonomy import (
    FAILURE_KINDS,
    RecoveryAttempt,
    classify_failure,
)

__all__ = [
    "Deadline",
    "FailureDiagnostics",
    "attach_diagnostics",
    "build_failure_diagnostics",
    "FaultInjected",
    "FaultSpec",
    "active_fault_plan",
    "build_profile_specs",
    "chaos_specs",
    "fault_site",
    "inject_faults",
    "singular_jacobian",
    "gmres_stall",
    "worker_crash",
    "worker_hang",
    "nan_evaluation",
    "cache_build_fault",
    "dispatch_fault",
    "PoolSupervisor",
    "RestartPolicy",
    "SupervisorEvent",
    "SolveCheckpoint",
    "solve_fingerprint",
    "FAILURE_KINDS",
    "RecoveryAttempt",
    "classify_failure",
]
