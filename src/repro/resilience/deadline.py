"""Cooperative per-solve deadlines.

A :class:`Deadline` is a started wall-clock budget that solve loops poll at
iteration boundaries — after a Newton iterate, inside a GMRES progress
callback, between continuation steps, between recovery-ladder rungs.  It is
*cooperative*: nothing is interrupted mid-factorisation, so a single
oversized LU can still overshoot the budget; what the deadline guarantees
is that no solve loops forever and that expiry surfaces as a structured
:class:`~repro.utils.exceptions.DeadlineExceededError` carrying whatever
partial statistics the solve had accumulated.

``Deadline(None)`` is a started-but-infinite deadline whose ``check`` is a
cheap no-op, so callers never need ``if deadline is not None`` guards.
"""

from __future__ import annotations

import time

from ..utils.exceptions import DeadlineExceededError

__all__ = ["Deadline"]


class Deadline:
    """A started wall-clock budget for one solve.

    Parameters
    ----------
    seconds:
        Budget in seconds, or ``None`` for an infinite deadline (every
        query reports unexpired; ``check`` never raises).
    clock:
        Monotonic time source, injectable for tests.
    """

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(self, seconds: float | None, *, clock=time.monotonic) -> None:
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Wall time since the deadline was started."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` for an infinite deadline; can go negative)."""
        if self.seconds is None:
            return float("inf")
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self.seconds is not None and self.elapsed() >= self.seconds

    def check(self, stage: str, *, partial_stats=None) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        ``stage`` names the loop that observed the expiry (``"newton"``,
        ``"gmres"``, ``"continuation"``, ``"recovery"``); ``partial_stats``
        travels on the exception so callers can report work done so far.
        """
        if self.seconds is None:
            return
        elapsed = self.elapsed()
        if elapsed >= self.seconds:
            raise DeadlineExceededError(
                f"solve deadline of {self.seconds:.3g}s exceeded after "
                f"{elapsed:.3g}s (at {stage} boundary)",
                deadline_s=self.seconds,
                elapsed_s=elapsed,
                stage=stage,
                partial_stats=partial_stats,
            )
