"""Failure taxonomy: classify solve failures and record recovery attempts.

Every failure a solve can hit maps to exactly one *failure kind* — a short
stable string the recovery ladder keys its applicability rules on and the
diagnostics payloads carry.  The classification is deliberately coarse:
rungs care about *what class of trouble* occurred, not about the precise
call stack.

==========================  ==================================================
kind                        raised as / meaning
==========================  ==================================================
``"divergence"``            :class:`ConvergenceError` — iteration budget
                            exhausted without converging.
``"singular"``              :class:`SingularMatrixError` — a linearisation
                            was structurally or numerically singular.
``"gmres_stagnation"``      :class:`GMRESStagnationError` — a Krylov solve
                            made no progress over a restart cycle (stuck,
                            not slow).
``"deadline"``              :class:`DeadlineExceededError` — the per-solve
                            deadline expired.  Terminal: never recovered.
``"worker_pool"``           :class:`WorkerPoolError` — a forked shard
                            worker crashed, hung, or mis-answered.
``"non_finite"``            NaN/Inf contaminated a residual or iterate.
``"service"``               :class:`ServiceError` — the simulation-service
                            layer failed around a solve (cache build,
                            dispatch, admission); the job retry budget — not
                            the solver ladder — owns recovery.
``"unknown"``               anything else derived from :class:`ReproError`.
==========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.exceptions import (
    ConvergenceError,
    DeadlineExceededError,
    GMRESStagnationError,
    ServiceError,
    SingularMatrixError,
)

__all__ = ["FAILURE_KINDS", "RecoveryAttempt", "classify_failure"]

#: The enumerated failure model (see the module docstring for semantics).
FAILURE_KINDS = (
    "divergence",
    "singular",
    "gmres_stagnation",
    "deadline",
    "worker_pool",
    "non_finite",
    "service",
    "unknown",
)


def classify_failure(exc: BaseException) -> str:
    """Map an exception from a solve to its failure kind.

    Order matters: the most specific subclasses are tested first
    (``GMRESStagnationError`` subclasses ``SingularMatrixError`` so
    existing ``except SingularMatrixError`` handlers keep catching it, but
    it classifies as its own kind).
    """
    # Imported lazily: repro.parallel imports repro.utils, and taxonomy
    # must stay importable from anywhere in the stack.
    from ..parallel.pool import WorkerPoolError

    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, ServiceError):
        return "service"
    if isinstance(exc, GMRESStagnationError):
        return "gmres_stagnation"
    if isinstance(exc, SingularMatrixError):
        return "singular"
    if isinstance(exc, WorkerPoolError):
        return "worker_pool"
    if isinstance(exc, ConvergenceError):
        return "divergence"
    if isinstance(exc, (FloatingPointError, OverflowError)):
        return "non_finite"
    return "unknown"


@dataclass(frozen=True)
class RecoveryAttempt:
    """One entry of ``MPDEStats.recovery_trace``.

    The trace starts with the failed baseline attempt (``rung="baseline"``)
    and then records every ladder rung the solver executed or skipped, so a
    recovered solve reports *how* it recovered and a failed one reports
    everything that was tried.

    Attributes
    ----------
    rung:
        ``"baseline"`` or a :data:`~repro.utils.options.RECOVERY_RUNGS`
        name.
    trigger:
        Failure kind (:data:`FAILURE_KINDS`) that caused this attempt —
        i.e. the classification of the *previous* attempt's failure.
    outcome:
        ``"recovered"`` (this attempt produced the returned solution),
        ``"failed"`` (it ran and failed), or ``"skipped"`` (the rung did
        not apply to this failure kind / solver configuration).
    detail:
        Human-readable specifics: the failure message, what the rung
        changed (``"preconditioner block_circulant_fast -> block_circulant"``),
        or why it was skipped.
    duration_s:
        Wall time this attempt consumed (0.0 for skipped rungs).
    """

    rung: str
    trigger: str
    outcome: str
    detail: str = ""
    duration_s: float = 0.0
