"""Supervised self-healing for the parallel worker pools.

PRs 5 and 7 gave the simulator two forked-worker pools — the sharded
evaluation pool (:class:`~repro.parallel.pool.ShardedKernelPool`) and the
worker-resident factor service
(:class:`~repro.parallel.factor_service.ResidentFactorPool`) — and both
originally degraded *sticky-permanently*: the first crash, hang or error
reply disabled the parallel path for the lifetime of the process.  That is
the wrong trade for long-lived operation (the ROADMAP's
simulation-as-a-service north star): a transient fault — an OOM-killed
worker, a supervisor-restarted container, one poisoned evaluation — should
cost one restart, not all future parallelism.

:class:`PoolSupervisor` owns the restart policy those pools now share:

* on a failure, tear the pool down and **restart** it after an exponential
  backoff (``min(backoff_base_s * 2**(attempt - 1), backoff_cap_s)``),
* run a cheap **parity health-probe** before re-admitting the pool to the
  solve path (a restarted-but-broken pool must not corrupt results — the
  probe recomputes a tiny reference problem in-process and demands a
  bit-for-bit match),
* only go **sticky-serial** after ``max_restarts`` attempts have been
  spent, with the reason recorded as ``"disabled (budget exhausted): ..."``
  so telemetry can distinguish it from a transient
  ``"degraded (healing): ..."`` episode,
* record every step as a :class:`SupervisorEvent` on :attr:`trace`
  (rung-trace style, mirroring ``MPDEStats.recovery_trace``); the solver
  surfaces the per-solve slice as ``MPDEStats.supervisor_trace``.

The module is deliberately leaf-level (stdlib + ``repro.utils`` only) so
both :mod:`repro.parallel` and :mod:`repro.circuits` can import it.
:class:`~repro.utils.options.RestartPolicy` itself lives in
:mod:`repro.utils.options` with the other option bundles and is re-exported
here for convenience.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..utils.logging import get_logger
from ..utils.options import RestartPolicy

__all__ = ["PoolSupervisor", "RestartPolicy", "SupervisorEvent"]

_LOG = get_logger("resilience.supervisor")


@dataclass(frozen=True)
class SupervisorEvent:
    """One step of a supervised pool-recovery episode.

    Immutable (like :class:`~repro.resilience.taxonomy.RecoveryAttempt`):
    events are appended to :attr:`PoolSupervisor.trace` as they happen and
    sliced per-solve onto ``MPDEStats.supervisor_trace``; nothing may
    rewrite history afterwards.

    Attributes
    ----------
    pool:
        Which pool the supervisor watches (``"kernel_shard"`` for the
        sharded evaluation pool, ``"factor_service"`` for the resident
        factor service).
    action:
        One of ``"failure"`` (the triggering fault), ``"backoff"`` (sleep
        before a restart attempt), ``"restarted"`` (the pool re-forked),
        ``"probe_passed"`` / ``"probe_failed"`` (parity health-probe
        verdict), ``"healed"`` (pool re-admitted to the solve path) or
        ``"disabled"`` (restart budget exhausted, sticky-serial from here).
    attempt:
        1-based restart attempt the event belongs to (0 for the initial
        ``"failure"`` event).
    detail:
        Human-readable specifics (the failure reason, probe mismatch, ...).
    reason:
        The formatted fallback reason this event implies for
        ``parallel_fallback_reason`` — set on ``"healed"``
        (``"degraded (healing): ..."``) and ``"disabled"``
        (``"disabled (budget exhausted): ..."``) events, empty otherwise.
    backoff_s:
        Backoff slept before this attempt (``"backoff"`` events only).
    duration_s:
        Wall-clock cost of the step (restart / probe events).
    at_s:
        Monotonic timestamp of the event, so traces from several
        supervisors can be merged chronologically.
    """

    pool: str
    action: str
    attempt: int
    detail: str = ""
    reason: str = ""
    backoff_s: float = 0.0
    duration_s: float = 0.0
    at_s: float = 0.0


class PoolSupervisor:
    """Restart policy and healing trace for one worker pool.

    The owning pool calls :meth:`handle_failure` from its failure path with
    two callables: ``restart`` (tear down / re-fork / re-arm the pool;
    raising means the attempt failed) and ``probe`` (cheap parity check of
    the restarted pool; returning ``False`` or raising means the pool is
    not trustworthy).  The supervisor sleeps the exponential backoff,
    restarts, probes, and either *heals* (returns ``None``; the caller
    retries its operation on the restarted pool) or — once the restart
    budget is spent — returns the sticky ``"disabled (budget exhausted)"``
    reason for the caller to record and act on.

    ``clock`` / ``sleep`` are injectable so tests can assert the backoff
    schedule without real waiting.
    """

    def __init__(
        self,
        pool_name: str,
        policy: RestartPolicy | None = None,
        *,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        self.pool_name = pool_name
        self.policy = policy if policy is not None else RestartPolicy()
        #: Every :class:`SupervisorEvent` of this supervisor's lifetime, in
        #: order.  Consumers snapshot ``len(trace)`` before an operation and
        #: slice afterwards to get the per-operation episode.
        self.trace: list[SupervisorEvent] = []
        #: Restart attempts consumed (monotone; never reset — the budget is
        #: per pool lifetime, not per solve, so a flapping worker cannot
        #: grind a long solve into endless restart cycles).
        self.attempts = 0
        #: Successful heals (restart + probe passed).
        self.heals = 0
        self._clock = clock
        self._sleep = sleep
        self._disabled_reason: str | None = None

    # -- state -------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Whether the restart budget is spent (sticky-serial from here)."""
        return self._disabled_reason is not None

    @property
    def disabled_reason(self) -> str:
        """The sticky ``"disabled (budget exhausted)"`` reason, or ``""``."""
        return self._disabled_reason or ""

    # -- event plumbing ----------------------------------------------------
    def _record(self, action: str, attempt: int, **fields) -> SupervisorEvent:
        event = SupervisorEvent(
            pool=self.pool_name,
            action=action,
            attempt=attempt,
            at_s=self._clock(),
            **fields,
        )
        self.trace.append(event)
        return event

    # -- the policy --------------------------------------------------------
    def handle_failure(self, reason: str, *, restart, probe=None) -> str | None:
        """Heal the pool after a failure, or exhaust the restart budget.

        Parameters
        ----------
        reason:
            Why the pool failed (recorded on the ``"failure"`` event and
            embedded in the formatted fallback reasons).
        restart:
            Zero-argument callable that re-forks / re-arms the pool.  Any
            exception it raises marks the attempt failed (and consumes it).
        probe:
            Optional zero-argument parity check of the restarted pool;
            skipped when ``RestartPolicy.health_probe`` is off.  Must
            return truthy for the pool to be re-admitted; returning falsy
            or raising marks the attempt failed.

        Returns
        -------
        ``None`` when the pool healed (restart + probe passed) — the caller
        should retry the failed operation on it.  The sticky
        ``"disabled (budget exhausted): ..."`` reason string once the
        budget is spent — the caller must disable its parallel path.
        """
        if self._disabled_reason is not None:
            return self._disabled_reason
        self._record("failure", 0, detail=reason)
        last_detail = reason
        while self.attempts < self.policy.max_restarts:
            self.attempts += 1
            attempt = self.attempts
            backoff = self.policy.backoff_s(attempt)
            self._record("backoff", attempt, backoff_s=backoff)
            if backoff > 0.0:
                self._sleep(backoff)
            started = self._clock()
            try:
                restart()
            except Exception as exc:  # noqa: BLE001 - any restart failure burns the attempt
                last_detail = f"restart failed: {type(exc).__name__}: {exc}"
                self._record(
                    "probe_failed",
                    attempt,
                    detail=last_detail,
                    duration_s=self._clock() - started,
                )
                continue
            self._record("restarted", attempt, duration_s=self._clock() - started)
            if self.policy.health_probe and probe is not None:
                probe_started = self._clock()
                try:
                    healthy = bool(probe())
                    probe_detail = "" if healthy else "parity probe mismatched"
                except Exception as exc:  # noqa: BLE001 - a raising probe is a failed probe
                    healthy = False
                    probe_detail = f"parity probe raised: {type(exc).__name__}: {exc}"
                probe_elapsed = self._clock() - probe_started
                if not healthy:
                    last_detail = probe_detail
                    self._record(
                        "probe_failed",
                        attempt,
                        detail=probe_detail,
                        duration_s=probe_elapsed,
                    )
                    continue
                self._record("probe_passed", attempt, duration_s=probe_elapsed)
            self.heals += 1
            healed_reason = f"degraded (healing): {reason}"
            self._record("healed", attempt, detail=reason, reason=healed_reason)
            _LOG.warning(
                "%s pool healed on restart attempt %d (%s)",
                self.pool_name,
                attempt,
                reason,
            )
            return None
        self._disabled_reason = (
            f"disabled (budget exhausted): {last_detail} "
            f"(after {self.attempts} restart(s))"
        )
        self._record(
            "disabled",
            self.attempts,
            detail=last_detail,
            reason=self._disabled_reason,
        )
        _LOG.warning(
            "%s pool disabled: restart budget exhausted after %d attempt(s) (%s)",
            self.pool_name,
            self.attempts,
            last_detail,
        )
        return self._disabled_reason
