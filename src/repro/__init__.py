"""repro — time-domain RF steady state for closely spaced tones.

A from-scratch Python reproduction of J. Roychowdhury, *A Time-domain RF
Steady-State Method for Closely Spaced Tones*, DAC 2002, together with the
full circuit-simulation substrate the method runs on:

* :mod:`repro.circuits` — netlists, device models, modified nodal analysis;
* :mod:`repro.analysis` — DC, transient, shooting, collocation PSS,
  harmonic balance, AC;
* :mod:`repro.core` — the paper's contribution: sheared
  difference-frequency time scales and the multi-time (MPDE) solver;
* :mod:`repro.signals` — tones, bit streams, stimuli, waveforms, spectra;
* :mod:`repro.rf` — mixer circuits (including the paper's balanced
  LO-doubling mixer), a direct-conversion receiver, and RF metrics;
* :mod:`repro.scenarios` — a registry of named, parameterised RF workloads
  (QAM/PSK/OFDM streams, receiver chains, conversion-gain and IP3 sweeps)
  with automatic grid selection and golden-pinned cross-validation;
* :mod:`repro.service` — the fault-tolerant simulation service: concurrent
  scenario requests on warm infrastructure (compiled-circuit LRU cache,
  bounded-queue orchestration with load shedding, per-job deadlines and
  checkpoint-backed retries, service-level telemetry).

Quick start::

    from repro.rf import balanced_lo_doubling_mixer
    from repro.core import solve_mpde
    from repro.utils import MPDEOptions

    mixer = balanced_lo_doubling_mixer()
    result = solve_mpde(mixer.compile(), mixer.scales, MPDEOptions(n_fast=40, n_slow=30))
    baseband = result.baseband_envelope("outp", node_neg="outn")
"""

from . import analysis, circuits, core, linalg, rf, scenarios, service, signals, utils

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "circuits",
    "core",
    "linalg",
    "rf",
    "scenarios",
    "service",
    "signals",
    "utils",
    "__version__",
]
