"""Decorator-registered scenario registry.

A *scenario* is a named, parameterised factory producing everything needed to
run and judge one RF workload end to end: compiled-circuit sources, stimuli,
the sheared time scales, a declared :class:`~repro.core.timescales.TimescaleBandwidths`
and the collocation grid recommended for it, the analysis to run (MPDE, PSS
or two-tone HB), and metric extractors.  Scenarios register themselves with
the :func:`register_scenario` decorator::

    @register_scenario(
        "qam16_mixer",
        params=dict(lo_frequency=1.0e9, difference_frequency=10.0e3),
        description="16-QAM symbol stream through the ideal multiplier mixer",
    )
    def _qam16(name, params):
        ...
        return BuiltScenario(name=name, params=params, cases=(case,), ...)

making the workload vocabulary *enumerable*: the verification suite, the
smoke-solve conftest hook and the benchmarks all iterate
:func:`scenario_names` rather than maintaining hand-picked circuit lists.
The decorator-registry shape follows the registered-stimulus-type pattern of
neurodamus (``StimulusManager.register_type``).

The registry also ships its own verification harness:
:func:`cross_validate` re-solves a scenario's first case by brute-force
transient integration and compares spectral amplitude and DC level — the
pattern of ``tests/test_integration_cross_validation.py`` generalised to
every registered workload.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from ..analysis.pss_fd import collocation_periodic_steady_state
from ..analysis.transient import run_transient
from ..core.multitone_hb import two_tone_harmonic_balance
from ..core.solver import solve_mpde
from ..core.timescales import ShearedTimeScales, TimescaleBandwidths
from ..resilience.checkpoint import solve_fingerprint
from ..signals.spectrum import fourier_coefficient
from ..signals.waveform import Waveform
from ..utils.exceptions import ConfigurationError
from ..utils.options import MPDEOptions, TransientOptions

__all__ = [
    "ScenarioSpec",
    "ScenarioCase",
    "BuiltScenario",
    "CrossValidationPlan",
    "CrossValidationReport",
    "CaseRun",
    "ScenarioRun",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "build_scenario",
    "build_scenario_smoke",
    "solve_case",
    "case_baseband",
    "run_scenario",
    "cross_validate",
    "scenario_fingerprint",
]

#: Analyses a scenario case may request.
ANALYSES = ("mpde", "pss", "hb")

_REGISTRY: dict[str, "ScenarioSpec"] = {}


@dataclass(frozen=True)
class ScenarioCase:
    """One concrete solve inside a scenario (sweeps carry several).

    ``compute_metrics(case, result)`` must return a mapping of metric name to
    float; the solver result it receives is whatever :func:`solve_case`
    produced for ``analysis`` (an ``MPDEResult``, ``CollocationPSSResult`` or
    ``TwoToneHBResult``).
    """

    label: str
    circuit: Any
    analysis: str
    output_pos: str
    output_neg: str | None
    bandwidths: TimescaleBandwidths
    grid: tuple[int, int]
    compute_metrics: Callable[["ScenarioCase", Any], Mapping[str, float]]
    scales: ShearedTimeScales | None = None
    period: float | None = None

    def __post_init__(self) -> None:
        if self.analysis not in ANALYSES:
            raise ConfigurationError(
                f"unknown analysis {self.analysis!r}; supported: {ANALYSES}"
            )
        if self.analysis in ("mpde", "hb") and self.scales is None:
            raise ConfigurationError(f"{self.analysis} cases need sheared time scales")
        if self.analysis == "pss" and self.period is None:
            raise ConfigurationError("pss cases need an explicit period")


@dataclass(frozen=True)
class CrossValidationPlan:
    """How to check a scenario against brute-force transient integration.

    ``frequency`` is the spectral line compared (typically the difference
    frequency for mixers, ``2*f1`` for the doubler); ``rtol`` the documented
    relative tolerance on its amplitude.  Small spectral amplitudes are
    compared against ``rtol * amplitude_floor_fraction * peak-to-peak`` of
    the reference instead, so near-zero lines cannot produce meaningless
    relative errors.
    """

    frequency: float
    rtol: float = 0.08
    dc_rtol: float = 0.03
    points_per_cycle: int = 48
    settle_periods: float = 1.0
    amplitude_floor_fraction: float = 0.02


@dataclass(frozen=True)
class CrossValidationReport:
    """Outcome of one :func:`cross_validate` run (all fields observable)."""

    scenario: str
    case_label: str
    frequency: float
    amplitude_solver: float
    amplitude_transient: float
    dc_solver: float
    dc_transient: float
    rtol: float
    dc_rtol: float
    amplitude_floor: float
    passed: bool

    def summary(self) -> str:
        """One-line human-readable verdict (used in assertion messages)."""
        return (
            f"{self.scenario}[{self.case_label}] @ {self.frequency:g} Hz: "
            f"solver {self.amplitude_solver:.6g} vs transient "
            f"{self.amplitude_transient:.6g} (rtol {self.rtol:g}, floor "
            f"{self.amplitude_floor:.3g}); DC {self.dc_solver:.6g} vs "
            f"{self.dc_transient:.6g} (rtol {self.dc_rtol:g}) -> "
            f"{'PASS' if self.passed else 'FAIL'}"
        )


@dataclass(frozen=True)
class BuiltScenario:
    """A scenario instantiated at concrete parameter values.

    ``aggregate`` (optional) maps the per-case metric dict
    (``{label: {metric: value}}``) to scenario-level metrics — e.g. the IIP3
    extrapolated from an amplitude sweep, or the conversion-gain flatness of
    an LO sweep.
    """

    name: str
    params: dict[str, Any]
    cases: tuple[ScenarioCase, ...]
    cross_validation: CrossValidationPlan
    aggregate: Callable[[dict[str, dict[str, float]]], Mapping[str, float]] | None = None

    def __post_init__(self) -> None:
        if not self.cases:
            raise ConfigurationError(f"scenario {self.name!r} built zero cases")
        labels = [case.label for case in self.cases]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(f"scenario {self.name!r} has duplicate case labels")
        if "aggregate" in labels:
            raise ConfigurationError("the case label 'aggregate' is reserved")


@dataclass(frozen=True)
class ScenarioSpec:
    """Registry entry: the factory plus its defaults and verification knobs.

    ``smoke_overrides`` downsizes the scenario (lower disparity, fewer
    symbols) to the configuration every automated check runs at: the tier-1
    cross-validation suite, the goldens in ``tests/goldens/scenarios.json``,
    the conftest smoke hook and the enumeration benchmark all use
    :func:`build_scenario_smoke`.  ``golden_rtol``/``golden_atol`` are the
    pinned-metric comparison tolerances.
    """

    name: str
    factory: Callable[..., BuiltScenario]
    params: dict[str, Any]
    description: str = ""
    tags: tuple[str, ...] = ()
    smoke_overrides: dict[str, Any] = field(default_factory=dict)
    golden_rtol: float = 1e-2
    golden_atol: float = 1e-9


@dataclass(frozen=True)
class CaseRun:
    """One solved case: the case, the raw solver result, and its metrics."""

    case: ScenarioCase
    result: Any
    metrics: dict[str, float]


@dataclass(frozen=True)
class ScenarioRun:
    """All case runs of a scenario plus per-case and aggregate metrics."""

    scenario: BuiltScenario
    case_runs: tuple[CaseRun, ...]
    aggregate_metrics: dict[str, float]

    @property
    def case_metrics(self) -> dict[str, dict[str, float]]:
        """Metric dicts keyed by case label."""
        return {run.case.label: dict(run.metrics) for run in self.case_runs}

    def all_metrics(self) -> dict[str, dict[str, float]]:
        """Per-case metrics plus (when present) an ``"aggregate"`` entry."""
        metrics = self.case_metrics
        if self.aggregate_metrics:
            metrics["aggregate"] = dict(self.aggregate_metrics)
        return metrics


# -- registration ------------------------------------------------------------


def register_scenario(
    name: str,
    *,
    params: Mapping[str, Any],
    description: str = "",
    tags: tuple[str, ...] = (),
    smoke: Mapping[str, Any] | None = None,
    golden_rtol: float = 1e-2,
    golden_atol: float = 1e-9,
):
    """Class/function decorator registering a scenario factory under ``name``.

    The decorated factory is called as ``factory(name, params)`` with the
    fully resolved parameter dict and must return a :class:`BuiltScenario`.
    Registering a name twice raises (re-register deliberately via
    :func:`unregister_scenario` first); ``smoke`` keys must be a subset of
    ``params`` keys.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"scenario name must be a non-empty string, got {name!r}")
    smoke_overrides = dict(smoke or {})
    unknown = set(smoke_overrides) - set(params)
    if unknown:
        raise ConfigurationError(
            f"smoke overrides for scenario {name!r} name unknown parameters: "
            f"{sorted(unknown)}"
        )

    def decorator(factory: Callable[..., BuiltScenario]) -> Callable[..., BuiltScenario]:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"scenario {name!r} is already registered (by "
                f"{_REGISTRY[name].factory.__module__}.{_REGISTRY[name].factory.__qualname__}); "
                "unregister_scenario() first to replace it"
            )
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            factory=factory,
            params=dict(params),
            description=description,
            tags=tuple(tags),
            smoke_overrides=smoke_overrides,
            golden_rtol=golden_rtol,
            golden_atol=golden_atol,
        )
        return factory

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (no-op names raise, to catch typos)."""
    if name not in _REGISTRY:
        raise ConfigurationError(f"cannot unregister unknown scenario {name!r}")
    del _REGISTRY[name]


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario; unknown names list near-misses."""
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, list(_REGISTRY), n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""
        raise ConfigurationError(
            f"unknown scenario {name!r}{hint} "
            f"(registered: {', '.join(scenario_names()) or '<none>'})"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Sorted names of every registered scenario."""
    return tuple(sorted(_REGISTRY))


def iter_scenarios() -> tuple[ScenarioSpec, ...]:
    """Every registered scenario spec, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


# -- building and running ----------------------------------------------------


def build_scenario(name: str, **overrides: Any) -> BuiltScenario:
    """Instantiate a scenario at its defaults, with keyword overrides.

    Override keys must name declared parameters — the parameter dict is the
    scenario's public contract, and silently accepting a typo would quietly
    run the default workload instead.
    """
    spec = get_scenario(name)
    unknown = set(overrides) - set(spec.params)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) {sorted(unknown)} for scenario {name!r}; "
            f"valid parameters: {sorted(spec.params)}"
        )
    params = {**spec.params, **overrides}
    built = spec.factory(name, dict(params))
    if not isinstance(built, BuiltScenario):
        raise ConfigurationError(
            f"scenario factory for {name!r} returned {type(built).__name__}, "
            "expected BuiltScenario"
        )
    if built.name != name or built.params != params:
        raise ConfigurationError(
            f"scenario factory for {name!r} must echo the name and resolved "
            "params it was called with"
        )
    return built


def build_scenario_smoke(name: str, **overrides: Any) -> BuiltScenario:
    """Instantiate a scenario at its downsized smoke/golden configuration."""
    spec = get_scenario(name)
    return build_scenario(name, **{**spec.smoke_overrides, **overrides})


def solve_case(
    case: ScenarioCase,
    *,
    mna=None,
    options: MPDEOptions | None = None,
    deadline_s: float | None = None,
    checkpoint_path=None,
    resume_from=None,
):
    """Solve one case with the analysis it declared, on its recommended grid.

    ``mna`` supplies a pre-compiled system (the simulation service's
    compiled-circuit cache hands warm systems in here; ``None`` compiles
    ``case.circuit`` fresh).  ``options`` is an :class:`MPDEOptions`
    template for the MPDE/HB analyses — the case's recommended grid always
    overrides ``n_fast``/``n_slow``, everything else (recovery policy,
    linear solver, parallelism) is honored.  ``deadline_s``,
    ``checkpoint_path`` and ``resume_from`` plumb the resilience layer's
    per-solve deadline and checkpoint/resume through to whichever analysis
    the case declared, so registry workloads honor per-request budgets and
    a retried request can continue from its
    :class:`~repro.resilience.checkpoint.SolveCheckpoint` instead of
    restarting from zero.
    """
    if mna is None:
        mna = case.circuit.compile()
    if case.analysis == "mpde":
        base = options if options is not None else MPDEOptions()
        mpde_options = replace(
            base,
            n_fast=case.grid[0],
            n_slow=case.grid[1],
            deadline_s=deadline_s if deadline_s is not None else base.deadline_s,
        )
        return solve_mpde(
            mna,
            case.scales,
            mpde_options,
            resume_from=resume_from,
            checkpoint_path=checkpoint_path,
        )
    if case.analysis == "hb":
        return two_tone_harmonic_balance(
            mna,
            case.scales,
            n_harmonics_fast=case.bandwidths.fast_harmonics,
            n_harmonics_slow=case.bandwidths.slow_harmonics,
            options=options,
            deadline_s=deadline_s,
            resume_from=resume_from,
            checkpoint_path=checkpoint_path,
        )
    return collocation_periodic_steady_state(
        mna,
        case.period,
        case.grid[0],
        deadline_s=deadline_s,
        resume_from=resume_from,
        checkpoint_path=checkpoint_path,
    )


def case_baseband(case: ScenarioCase, result) -> Waveform:
    """The decision waveform of a solved case.

    For MPDE/HB this is the LO-cycle-mean baseband envelope of the
    (differential) output over one difference period; for PSS it is the
    output waveform over the solve period.
    """
    neg = None if case.output_neg in (None, "0") else case.output_neg
    if case.analysis == "mpde":
        return result.baseband_envelope(case.output_pos, node_neg=neg, mode="mean")
    if case.analysis == "hb":
        return result.mpde.baseband_envelope(case.output_pos, node_neg=neg, mode="mean")
    if neg is None:
        return result.waveform(case.output_pos)
    return result.differential_waveform(case.output_pos, neg)


def run_scenario(
    scenario: BuiltScenario,
    *,
    first_case_only: bool = False,
    solve: Callable[[ScenarioCase], Any] | None = None,
    deadline_s: float | None = None,
    checkpoint_path=None,
    resume_from=None,
) -> ScenarioRun:
    """Solve a built scenario's cases and evaluate every metric.

    ``first_case_only`` is the smoke mode: one representative solve per
    scenario, skipping sweep tails and aggregate metrics.  ``solve``
    replaces the per-case solver (default :func:`solve_case`) — the
    simulation service injects its cache-leasing, retrying solver here
    while reusing this function's metric and aggregate logic unchanged.
    ``deadline_s`` is a *per-case* budget (each case gets its own);
    ``checkpoint_path``/``resume_from`` are forwarded to every case's
    :func:`solve_case` (single-case scenarios are the useful shape — a
    multi-case sweep would overwrite one checkpoint file per case).
    """
    if solve is None:
        def solve(case: ScenarioCase):
            return solve_case(
                case,
                deadline_s=deadline_s,
                checkpoint_path=checkpoint_path,
                resume_from=resume_from,
            )

    cases = scenario.cases[:1] if first_case_only else scenario.cases
    case_runs = []
    for case in cases:
        result = solve(case)
        metrics = {
            key: float(value) for key, value in case.compute_metrics(case, result).items()
        }
        case_runs.append(CaseRun(case=case, result=result, metrics=metrics))
    aggregate: dict[str, float] = {}
    if scenario.aggregate is not None and not first_case_only:
        per_case = {run.case.label: dict(run.metrics) for run in case_runs}
        aggregate = {
            key: float(value) for key, value in scenario.aggregate(per_case).items()
        }
    return ScenarioRun(
        scenario=scenario, case_runs=tuple(case_runs), aggregate_metrics=aggregate
    )


def cross_validate(scenario: BuiltScenario, result=None) -> CrossValidationReport:
    """Check the scenario's first case against brute-force transient stepping.

    The reference integrates the *same compiled circuit* through
    ``settle_periods + 1`` periods of single-time trapezoidal transient at
    ``points_per_cycle`` steps per fast cycle, windows the final period (the
    start-up transient has decayed), and compares (a) the spectral amplitude
    at ``plan.frequency`` and (b) the DC level against the solver's waveform
    from :func:`case_baseband`.  Amplitudes are compared in magnitude only:
    the MPDE slow-axis phase origin is arbitrary, and the transient window
    starts at an arbitrary absolute time.
    """
    case = scenario.cases[0]
    plan = scenario.cross_validation
    if result is None:
        result = solve_case(case)
    solver_wave = case_baseband(case, result)

    if case.analysis == "pss":
        period = case.period
        dt = period / plan.points_per_cycle
    else:
        period = case.scales.difference_period
        dt = case.scales.fast_period / plan.points_per_cycle
    t_stop = (plan.settle_periods + 1.0) * period
    transient = run_transient(
        case.circuit.compile(),
        t_stop=t_stop,
        dt=dt,
        options=TransientOptions(method="trapezoidal"),
    )
    neg = None if case.output_neg in (None, "0") else case.output_neg
    if neg is None:
        reference = transient.waveform(case.output_pos)
    else:
        reference = transient.differential_waveform(case.output_pos, neg)
    steady = reference.window(plan.settle_periods * period, t_stop)

    amplitude_solver = 2.0 * abs(fourier_coefficient(solver_wave, plan.frequency))
    amplitude_transient = 2.0 * abs(fourier_coefficient(steady, plan.frequency))
    floor = plan.amplitude_floor_fraction * steady.peak_to_peak()
    amplitude_ok = abs(amplitude_solver - amplitude_transient) <= plan.rtol * max(
        amplitude_transient, floor
    )
    dc_solver = solver_wave.mean()
    dc_transient = steady.mean()
    dc_ok = abs(dc_solver - dc_transient) <= plan.dc_rtol * max(abs(dc_transient), floor)

    return CrossValidationReport(
        scenario=scenario.name,
        case_label=case.label,
        frequency=plan.frequency,
        amplitude_solver=float(amplitude_solver),
        amplitude_transient=float(amplitude_transient),
        dc_solver=float(dc_solver),
        dc_transient=float(dc_transient),
        rtol=plan.rtol,
        dc_rtol=plan.dc_rtol,
        amplitude_floor=float(floor),
        passed=bool(amplitude_ok and dc_ok),
    )


# -- identity ----------------------------------------------------------------


def _device_descriptor(device) -> dict[str, Any]:
    """Deterministic rendering of one device: repr plus its public fields."""
    fields = {
        key: repr(value)
        for key, value in sorted(vars(device).items())
        if not key.startswith("_")
    }
    return {"repr": repr(device), "fields": fields}


def scenario_fingerprint(scenario: BuiltScenario) -> str:
    """Content hash of a built scenario's full physical identity.

    Covers every case's netlist (device types, names, nodes and parameter
    fields), time scales, analysis and grid, plus the resolved scenario
    parameters — so rebuilding a scenario from ``scenario.params`` must
    reproduce the same fingerprint (the round-trip property tested by
    ``tests/test_scenarios.py``), while any physical change to the workload
    changes it.  Built on the same canonical-JSON hashing as the solver's
    checkpoint validation (:func:`repro.resilience.checkpoint.solve_fingerprint`).
    """
    cases = [
        {
            "label": case.label,
            "analysis": case.analysis,
            "output": [case.output_pos, case.output_neg],
            "scales": repr(case.scales),
            "period": case.period,
            "bandwidths": [case.bandwidths.fast_harmonics, case.bandwidths.slow_harmonics],
            "grid": list(case.grid),
            "devices": [_device_descriptor(device) for device in case.circuit.devices],
        }
        for case in scenario.cases
    ]
    return solve_fingerprint(
        "scenario", name=scenario.name, params=scenario.params, cases=cases
    )
