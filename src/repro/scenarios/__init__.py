"""Scenario registry and modulation-scheme library.

A *scenario* is a named, parameterised RF workload: a compiled circuit, its
stimulus, the analysis to run (MPDE, PSS or harmonic balance) and a
collocation grid derived automatically from the excitation's declared
bandwidths — so ``run_scenario(build_scenario("qam16_mixer"))`` needs zero
numerical configuration.  Importing this package loads the built-in library
(:mod:`repro.scenarios.library`); user code registers additional scenarios
with the :func:`register_scenario` decorator.

Every built-in scenario is cross-validated against brute-force transient
integration and pinned to golden metrics in ``tests/goldens/scenarios.json``
(see ``tests/test_scenarios.py`` and :mod:`repro.scenarios.goldens`).
"""

from .modulation import (
    ModulationScheme,
    demodulate_symbols,
    error_vector_magnitude,
    get_scheme,
    iq_symbol_envelopes,
    ofdm_demodulate,
    ofdm_envelopes,
    psk_scheme,
    qam_scheme,
    scheme_names,
)
from .registry import (
    ANALYSES,
    BuiltScenario,
    CaseRun,
    CrossValidationPlan,
    CrossValidationReport,
    ScenarioCase,
    ScenarioRun,
    ScenarioSpec,
    build_scenario,
    build_scenario_smoke,
    case_baseband,
    cross_validate,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_fingerprint,
    scenario_names,
    solve_case,
    unregister_scenario,
)

from . import library  # noqa: E402,F401  (imported for its registration side effects)

__all__ = [
    "ANALYSES",
    "ScenarioCase",
    "ScenarioSpec",
    "ScenarioRun",
    "CaseRun",
    "BuiltScenario",
    "CrossValidationPlan",
    "CrossValidationReport",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "build_scenario",
    "build_scenario_smoke",
    "run_scenario",
    "solve_case",
    "case_baseband",
    "cross_validate",
    "scenario_fingerprint",
    "ModulationScheme",
    "psk_scheme",
    "qam_scheme",
    "get_scheme",
    "scheme_names",
    "iq_symbol_envelopes",
    "ofdm_envelopes",
    "demodulate_symbols",
    "ofdm_demodulate",
    "error_vector_magnitude",
]
