"""Golden-metric computation and regeneration for the scenario library.

The goldens pin every registered scenario's metrics at its *smoke*
configuration (the same downsized builds the tier-1 suite solves), so a
behavioural regression anywhere in the stack — device models, MPDE/PSS/HB
solvers, grid selection, demodulation — shows up as a metric drift against
``tests/goldens/scenarios.json``.

Regenerate deliberately after an intentional physics change::

    PYTHONPATH=src python -m repro.scenarios.goldens --out tests/goldens/scenarios.json

CI diffs the freshly computed metrics against the pinned file on failure, so
the delta is visible in the job log without rerunning anything locally.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .registry import (
    build_scenario_smoke,
    iter_scenarios,
    run_scenario,
    scenario_fingerprint,
)

__all__ = ["compute_golden_metrics", "compute_all_goldens", "main"]


def compute_golden_metrics(name: str) -> dict[str, Any]:
    """Solve one scenario at its smoke configuration and collect its goldens."""
    from .registry import get_scenario

    spec = get_scenario(name)
    scenario = build_scenario_smoke(name)
    run = run_scenario(scenario)
    return {
        "params": {key: repr(value) for key, value in sorted(scenario.params.items())},
        "fingerprint": scenario_fingerprint(scenario),
        "grids": {case.label: list(case.grid) for case in scenario.cases},
        "analyses": {case.label: case.analysis for case in scenario.cases},
        "metrics": run.all_metrics(),
        "tolerance": {"rtol": spec.golden_rtol, "atol": spec.golden_atol},
    }


def compute_all_goldens() -> dict[str, Any]:
    """Goldens for every registered scenario, keyed by name."""
    return {spec.name: compute_golden_metrics(spec.name) for spec in iter_scenarios()}


def main(argv: list[str] | None = None) -> int:
    """CLI: compute goldens and write (or print) the JSON document."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        help="output path for the goldens JSON (default: print to stdout)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to the named scenario(s); repeatable",
    )
    options = parser.parse_args(argv)

    if options.scenario:
        document = {name: compute_golden_metrics(name) for name in options.scenario}
    else:
        document = compute_all_goldens()
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if options.out:
        with open(options.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote goldens for {len(document)} scenario(s) to {options.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
