"""Modulation schemes: constellations, I/Q envelopes, demodulation and EVM.

The scenario library transmits digital constellations through the mixer
netlists by amplitude-modulating the I and Q rails of a quadrature carrier
(see ``envelope_q`` on the mixer builders).  This module provides

* :class:`ModulationScheme` — a named constellation (BPSK/QPSK/8-PSK/16-QAM/
  64-QAM) with bit-to-symbol mapping,
* :func:`iq_symbol_envelopes` / :func:`ofdm_envelopes` — the periodic I/Q
  baseband envelopes carrying a symbol sequence (one
  :class:`~repro.signals.bitstream.SymbolStreamEnvelope` per rail, or one
  :class:`~repro.signals.bitstream.FourierEnvelope` per rail for OFDM),
* :func:`demodulate_symbols` / :func:`ofdm_demodulate` — recover the complex
  symbols from a solved baseband envelope, and
* :func:`error_vector_magnitude` — the RMS EVM after a least-squares complex
  gain/phase fit.

Demodulation detail: with the RF carrier ``fd`` below the LO (or its
harmonic), the down-converted output is not the symbol envelope itself but
``Re[(I + jQ)(t) * e^{j 2 pi fd t}]`` times a conversion gain — a
difference-frequency *beat* multiplies the symbols.  Per-slot averaging
cannot undo this (a symbol slot spans only a fraction of a beat cycle, so the
conjugate image does not integrate away); instead :func:`demodulate_symbols`
solves one joint linear least-squares system, per slot ``k``:

    ``bb(t) = a_k cos(2 pi fd t) - b_k sin(2 pi fd t) + c``   for t in slot k

whose solution gives the complex symbol estimate ``s_k = a_k + j b_k`` and a
shared DC offset ``c``.  The residual phase/gain ambiguity (the MPDE slow
axis has an arbitrary phase origin, which cyclically rotates the sequence and
rotates every symbol by a common phase) is then removed by
:func:`error_vector_magnitude`'s gain fit minimised over cyclic shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..signals.bitstream import FourierEnvelope, SymbolStreamEnvelope
from ..signals.spectrum import fourier_coefficient
from ..signals.waveform import Waveform
from ..utils.exceptions import AnalysisError, ConfigurationError
from ..utils.validation import check_positive

__all__ = [
    "ModulationScheme",
    "psk_scheme",
    "qam_scheme",
    "get_scheme",
    "scheme_names",
    "iq_symbol_envelopes",
    "ofdm_envelopes",
    "demodulate_symbols",
    "ofdm_demodulate",
    "error_vector_magnitude",
]


@dataclass(frozen=True)
class ModulationScheme:
    """A named constellation mapping bit groups to complex symbols.

    ``constellation[i]`` is the symbol for the ``bits_per_symbol``-bit group
    with MSB-first integer value ``i``.  Constellations are peak-normalised
    (``max |c| = 1``) so the RF drive amplitude bounds the instantaneous
    envelope for every scheme alike.
    """

    name: str
    bits_per_symbol: int
    constellation: tuple[complex, ...]

    def __post_init__(self) -> None:
        if len(self.constellation) != 2**self.bits_per_symbol:
            raise ConfigurationError(
                f"scheme {self.name!r}: constellation size "
                f"{len(self.constellation)} != 2**{self.bits_per_symbol}"
            )

    @property
    def order(self) -> int:
        """Number of constellation points."""
        return len(self.constellation)

    def symbols_from_bits(self, bits) -> np.ndarray:
        """Map a bit sequence (length a multiple of ``bits_per_symbol``) to symbols."""
        bits = np.asarray(bits, dtype=int)
        if bits.size == 0 or bits.size % self.bits_per_symbol != 0:
            raise ConfigurationError(
                f"bit count {bits.size} is not a positive multiple of "
                f"bits_per_symbol={self.bits_per_symbol}"
            )
        if np.any((bits != 0) & (bits != 1)):
            raise ConfigurationError("bits must contain only 0s and 1s")
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 2 ** np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = groups @ weights
        table = np.asarray(self.constellation, dtype=complex)
        return table[indices]


def psk_scheme(order: int, name: str | None = None) -> ModulationScheme:
    """Phase-shift keying: ``order`` unit-magnitude symbols, Gray-free mapping.

    For ``order >= 4`` points sit at ``exp(j*(2*pi*k/order + pi/order))`` —
    the half-step offset keeps QPSK symbols off the I/Q axes (the familiar
    ``(+-1 +-j)/sqrt(2)`` constellation) so both rails always carry signal.
    BPSK keeps the classic real ``+-1`` pair.
    """
    if order < 2 or order & (order - 1):
        raise ConfigurationError(f"PSK order must be a power of two >= 2, got {order}")
    bits_per_symbol = int(order).bit_length() - 1
    offset = np.pi / order if order > 2 else 0.0
    angles = 2.0 * np.pi * np.arange(order) / order + offset
    constellation = tuple(complex(np.cos(a), np.sin(a)) for a in angles)
    return ModulationScheme(
        name=name or f"psk{order}",
        bits_per_symbol=bits_per_symbol,
        constellation=constellation,
    )


def qam_scheme(order: int, name: str | None = None) -> ModulationScheme:
    """Square quadrature amplitude modulation, peak-normalised.

    ``order`` must be an even power of two (16, 64, ...); symbols lie on the
    ``sqrt(order) x sqrt(order)`` grid with levels ``+-1, +-3, ...`` scaled so
    the corner points have unit magnitude.
    """
    side = int(round(np.sqrt(order)))
    if side * side != order or side < 2 or side & (side - 1):
        raise ConfigurationError(
            f"QAM order must be an even power of two (16, 64, ...), got {order}"
        )
    bits_per_symbol = int(order).bit_length() - 1
    levels = np.arange(-(side - 1), side, 2, dtype=float)
    scale = float(np.hypot(levels[-1], levels[-1]))
    constellation = tuple(
        complex(i_level / scale, q_level / scale) for i_level in levels for q_level in levels
    )
    return ModulationScheme(
        name=name or f"qam{order}",
        bits_per_symbol=bits_per_symbol,
        constellation=constellation,
    )


_SCHEMES = {
    scheme.name: scheme
    for scheme in (
        psk_scheme(2, "bpsk"),
        psk_scheme(4, "qpsk"),
        psk_scheme(8),
        qam_scheme(16),
        qam_scheme(64),
    )
}


def get_scheme(name: str) -> ModulationScheme:
    """Look up a built-in modulation scheme by name."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown modulation scheme {name!r}; available: {sorted(_SCHEMES)}"
        ) from None


def scheme_names() -> tuple[str, ...]:
    """Names of the built-in modulation schemes."""
    return tuple(sorted(_SCHEMES))


def iq_symbol_envelopes(
    scheme: ModulationScheme,
    bits,
    period: float,
    *,
    rise_fraction: float = 0.15,
) -> tuple[SymbolStreamEnvelope, SymbolStreamEnvelope, np.ndarray]:
    """The I/Q envelope pair transmitting ``bits`` over one slow period.

    Returns ``(envelope_i, envelope_q, symbols)`` where the envelopes step
    through the real and imaginary symbol coordinates with raised-cosine
    transitions, and ``symbols`` is the transmitted complex sequence (the EVM
    reference).
    """
    check_positive("period", period)
    symbols = scheme.symbols_from_bits(bits)
    symbol_period = period / symbols.size
    envelope_i = SymbolStreamEnvelope(
        symbols.real, symbol_period, rise_fraction=rise_fraction
    )
    envelope_q = SymbolStreamEnvelope(
        symbols.imag, symbol_period, rise_fraction=rise_fraction
    )
    return envelope_i, envelope_q, symbols


def ofdm_envelopes(
    scheme: ModulationScheme,
    bits,
    n_subcarriers: int,
    period: float,
) -> tuple[FourierEnvelope, FourierEnvelope, np.ndarray]:
    """I/Q envelopes of one OFDM symbol: ``n_subcarriers`` modulated harmonics.

    Subcarrier ``k`` (1-based) is the ``k``-th harmonic of ``period`` carrying
    one constellation point; the complex envelope is
    ``sum_k c_k e^{j 2 pi k t / period} / n_subcarriers`` (normalised by the
    subcarrier count so the peak envelope stays bounded by 1).  Returns
    ``(envelope_i, envelope_q, symbols)`` with ``symbols`` the per-subcarrier
    constellation points.
    """
    check_positive("period", period)
    if n_subcarriers < 1:
        raise ConfigurationError("n_subcarriers must be >= 1")
    symbols = scheme.symbols_from_bits(bits)
    if symbols.size != n_subcarriers:
        raise ConfigurationError(
            f"bit count maps to {symbols.size} symbols but {n_subcarriers} "
            "subcarriers were requested"
        )
    harmonics = {
        k + 1: complex(symbols[k]) / n_subcarriers for k in range(n_subcarriers)
    }
    envelope_i = FourierEnvelope(period, harmonics, part="real")
    envelope_q = FourierEnvelope(period, harmonics, part="imag")
    return envelope_i, envelope_q, symbols


def demodulate_symbols(
    baseband: Waveform,
    difference_frequency: float,
    n_symbols: int,
    *,
    guard_fraction: float = 0.25,
) -> np.ndarray:
    """Recover complex symbols from a down-converted baseband waveform.

    Solves the joint least-squares model described in the module docstring:
    per slot ``k``, ``bb(t) = a_k cos(w t) - b_k sin(w t) + c`` with
    ``w = 2 pi fd``, sharing one DC offset ``c`` across slots; returns
    ``a + j b`` per slot.  ``guard_fraction`` excludes samples near the slot
    boundaries where the raised-cosine symbol transitions smear adjacent
    symbols together.
    """
    check_positive("difference_frequency", difference_frequency)
    if n_symbols < 1:
        raise AnalysisError("n_symbols must be >= 1")
    if not 0.0 <= guard_fraction < 0.5:
        raise AnalysisError("guard_fraction must be in [0, 0.5)")
    times = np.asarray(baseband.times, dtype=float)
    values = np.asarray(baseband.values, dtype=float)
    duration = baseband.duration
    if duration <= 0.0:
        raise AnalysisError("baseband waveform must span a positive duration")
    slot = duration / n_symbols
    local = (times - times[0]) / slot
    index = np.minimum(np.floor(local).astype(int), n_symbols - 1)
    frac = local - np.floor(local)
    keep = (frac >= guard_fraction) & (frac <= 1.0 - guard_fraction)
    if np.count_nonzero(keep) < 2 * n_symbols + 1:
        raise AnalysisError(
            f"only {np.count_nonzero(keep)} guarded samples for "
            f"{2 * n_symbols + 1} unknowns; use a finer baseband waveform or a "
            "smaller guard_fraction"
        )
    theta = 2.0 * np.pi * difference_frequency * times[keep]
    rows = np.count_nonzero(keep)
    design = np.zeros((rows, 2 * n_symbols + 1))
    slot_of_row = index[keep]
    design[np.arange(rows), 2 * slot_of_row] = np.cos(theta)
    design[np.arange(rows), 2 * slot_of_row + 1] = -np.sin(theta)
    design[:, -1] = 1.0
    solution, *_ = np.linalg.lstsq(design, values[keep], rcond=None)
    return solution[0:-1:2] + 1j * solution[1:-1:2]


def ofdm_demodulate(
    baseband: Waveform,
    difference_frequency: float,
    n_subcarriers: int,
) -> np.ndarray:
    """Recover per-subcarrier complex amplitudes from a baseband waveform.

    After the difference-frequency beat, transmitted subcarrier ``k`` (the
    ``k``-th harmonic of the envelope period) appears in the real baseband at
    ``(k + 1) * fd``; its complex Fourier coefficient there is
    ``gain * c_k / 2``, so projecting each line recovers the symbol vector up
    to one common complex gain (removed by the EVM fit).
    """
    check_positive("difference_frequency", difference_frequency)
    if n_subcarriers < 1:
        raise AnalysisError("n_subcarriers must be >= 1")
    return np.asarray(
        [
            2.0 * fourier_coefficient(baseband, (k + 1) * difference_frequency)
            for k in range(1, n_subcarriers + 1)
        ],
        dtype=complex,
    )


def error_vector_magnitude(
    estimated: np.ndarray,
    reference: np.ndarray,
    *,
    allow_cyclic_shift: bool = True,
) -> float:
    """RMS error vector magnitude after a least-squares complex gain fit.

    For each candidate alignment (cyclic shifts of ``reference`` when
    ``allow_cyclic_shift`` — the MPDE slow axis fixes an arbitrary phase
    origin, exactly as in ``BitRecovery.matches``), fit the single complex
    gain ``g`` minimising ``|estimated - g * reference|`` and return the best

        ``EVM = ||estimated - g ref|| / ||g ref||``

    (RMS error normalised by the RMS of the fitted constellation).
    """
    estimated = np.asarray(estimated, dtype=complex).ravel()
    reference = np.asarray(reference, dtype=complex).ravel()
    if estimated.size != reference.size or estimated.size == 0:
        raise AnalysisError(
            f"estimated and reference must have equal nonzero length "
            f"(got {estimated.size} and {reference.size})"
        )
    shifts = range(estimated.size) if allow_cyclic_shift else (0,)
    best = np.inf
    for shift in shifts:
        candidate = np.roll(reference, shift)
        denom = np.vdot(candidate, candidate).real
        if denom <= 0.0:
            continue
        gain = np.vdot(candidate, estimated) / denom
        fitted = gain * candidate
        scale = float(np.linalg.norm(fitted))
        if scale <= 0.0:
            continue
        evm = float(np.linalg.norm(estimated - fitted)) / scale
        best = min(best, evm)
    if not np.isfinite(best):
        raise AnalysisError("EVM fit failed: reference constellation has no energy")
    return best
