"""The built-in scenario library: ten registered RF workloads.

Every scenario here follows the same recipe:

1. derive the transmitted waveform from the parameters (a modulation scheme
   plus a deterministic PRBS bit source, a pure tone, or a two-tone
   intermodulation envelope),
2. build the circuit through the :mod:`repro.rf.mixers` builders,
3. declare the excitation's spectral content as a
   :class:`~repro.core.timescales.TimescaleBandwidths` and let
   :func:`~repro.core.timescales.recommend_grid` pick the collocation grid —
   no scenario hard-codes ``(n_fast, n_slow)``,
4. attach metric extractors (conversion gain, EVM, eye opening, spectral
   peaks) and a :class:`~repro.scenarios.registry.CrossValidationPlan`.

Default parameters are paper-scale (hundreds of MHz, disparity 10^4+);
``smoke`` overrides downsize every scenario to disparity ~40 so brute-force
transient cross-validation stays tractable — that downsized configuration is
also what the goldens in ``tests/goldens/scenarios.json`` pin.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.timescales import TimescaleBandwidths, recommend_grid
from ..rf.metrics import conversion_metrics, eye_opening
from ..rf.receiver import recover_bits
from ..rf.mixers import (
    balanced_lo_doubling_mixer,
    default_bit_envelope,
    ideal_multiplier_mixer,
    lo_frequency_doubler,
    unbalanced_switching_mixer,
)
from ..signals.bitstream import ConstantEnvelope, FourierEnvelope, prbs_bits
from ..signals.spectrum import fourier_coefficient
from ..signals.waveform import Waveform
from .modulation import (
    demodulate_symbols,
    error_vector_magnitude,
    get_scheme,
    iq_symbol_envelopes,
    ofdm_demodulate,
    ofdm_envelopes,
)
from .registry import (
    BuiltScenario,
    CrossValidationPlan,
    ScenarioCase,
    case_baseband,
    register_scenario,
)

__all__: list[str] = []  # scenarios are reached through the registry, not imports

#: Fast-axis harmonic content by mixer nonlinearity: the behavioural
#: multiplier is quadratic (its products stop at the second mixing order),
#: hard-switched single-MOS mixers carry rich LO harmonics, and the
#: LO-doubling topologies add the doubled line on top.
_FAST_HARMONICS = {"ideal": 3, "switching": 8, "balanced": 10, "doubler": 16}


def _amplitude_at(waveform: Waveform, frequency: float) -> float:
    """Peak amplitude of one spectral line."""
    return 2.0 * abs(fourier_coefficient(waveform, frequency))


def _bit_decision_metrics(
    baseband: Waveform, bits: tuple[int, ...]
) -> dict[str, float]:
    """Detect an amplitude-keyed bit pattern non-coherently from the fd beat.

    The differential baseband is ``env(t2) * cos(2*pi*fd*t2 + phi)`` plus
    mixer distortion, so the decision waveform is the rectified magnitude
    ``|bb - mean|`` sliced in peak mode (the :mod:`repro.rf.receiver` flow).
    Peak detection is only unconditionally valid with four bit slots per
    beat period — each slot then contains a beat maximum — which is why both
    bitstream scenarios run their smoke/golden configuration at 4 bits.
    """
    magnitude = Waveform(
        baseband.times, np.abs(baseband.values - baseband.mean()), name=baseband.name
    )
    n_bits = len(bits)
    recovery = recover_bits(magnitude, n_bits, mode="peak")
    bit_period = magnitude.duration / n_bits
    return {
        "bit_match": 1.0 if recovery.matches(bits) else 0.0,
        "eye_opening": eye_opening(magnitude, bit_period, n_bits=n_bits),
    }


#: PRBS-7 seed used by every scenario's bit source.  The default LFSR seed
#: starts with a six-one run, which would make the short smoke patterns
#: degenerate (all-ones); this seed mixes from the first bit.
_PRBS_SEED = 0b0110100


def _scenario_bits(n_bits: int) -> np.ndarray:
    """The deterministic bit source every scenario transmits."""
    return prbs_bits(7, n_bits, seed=_PRBS_SEED)


def _prbs_symbol_bits(scheme_name: str, n_symbols: int) -> np.ndarray:
    """Bits for ``n_symbols`` symbols of the named modulation scheme."""
    scheme = get_scheme(scheme_name)
    return _scenario_bits(n_symbols * scheme.bits_per_symbol)


def _modulated_mixer_scenario(
    name: str,
    params: dict,
    *,
    scheme_name: str,
    mixer_kind: str,
) -> BuiltScenario:
    """Shared factory body for the single-carrier modulation scenarios."""
    scheme = get_scheme(scheme_name)
    n_symbols = int(params["n_symbols"])
    fd = float(params["difference_frequency"])
    period = 1.0 / fd
    bits = _prbs_symbol_bits(scheme_name, n_symbols)
    envelope_i, envelope_q, symbols = iq_symbol_envelopes(scheme, bits, period)

    if mixer_kind == "ideal":
        mixer = ideal_multiplier_mixer(
            lo_frequency=float(params["lo_frequency"]),
            difference_frequency=fd,
            rf_amplitude=float(params["rf_amplitude"]),
            envelope=envelope_i,
            envelope_q=envelope_q,
        )
    else:
        mixer = unbalanced_switching_mixer(
            lo_frequency=float(params["lo_frequency"]),
            difference_frequency=fd,
            rf_amplitude=float(params["rf_amplitude"]),
            envelope=envelope_i,
            envelope_q=envelope_q,
        )
    bandwidths = TimescaleBandwidths.for_symbol_stream(
        n_symbols, fast_harmonics=_FAST_HARMONICS[mixer_kind]
    )

    def metrics(case: ScenarioCase, result) -> dict[str, float]:
        baseband = case_baseband(case, result)
        estimated = demodulate_symbols(baseband, fd, n_symbols)
        return {
            "evm": error_vector_magnitude(estimated, symbols),
            "baseband_fd_amplitude": _amplitude_at(baseband, fd),
            "dc_level": baseband.mean(),
        }

    case = ScenarioCase(
        label="modulated",
        circuit=mixer.circuit,
        analysis="mpde",
        output_pos=mixer.output_pos,
        output_neg=mixer.output_neg,
        bandwidths=bandwidths,
        grid=recommend_grid(bandwidths),
        compute_metrics=metrics,
        scales=mixer.scales,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(frequency=fd),
    )


@register_scenario(
    "bpsk_mixer",
    params=dict(
        lo_frequency=450.0e6, difference_frequency=15.0e3, n_symbols=8, rf_amplitude=0.05
    ),
    description="BPSK symbol stream through the unbalanced switching mixer",
    tags=("modulation", "mixer"),
    smoke=dict(lo_frequency=2.0e6, difference_frequency=50.0e3, n_symbols=4),
)
def _bpsk_mixer(name: str, params: dict) -> BuiltScenario:
    return _modulated_mixer_scenario(
        name, params, scheme_name="bpsk", mixer_kind="switching"
    )


@register_scenario(
    "qpsk_mixer",
    params=dict(
        lo_frequency=1.0e9, difference_frequency=10.0e3, n_symbols=8, rf_amplitude=1.0
    ),
    description="QPSK I/Q stream through the ideal multiplier mixer",
    tags=("modulation", "mixer"),
    smoke=dict(lo_frequency=1.0e6, difference_frequency=25.0e3, n_symbols=4),
)
def _qpsk_mixer(name: str, params: dict) -> BuiltScenario:
    return _modulated_mixer_scenario(name, params, scheme_name="qpsk", mixer_kind="ideal")


@register_scenario(
    "psk8_mixer",
    params=dict(
        lo_frequency=450.0e6, difference_frequency=15.0e3, n_symbols=8, rf_amplitude=0.05
    ),
    description="8-PSK I/Q stream through the unbalanced switching mixer",
    tags=("modulation", "mixer"),
    smoke=dict(lo_frequency=2.0e6, difference_frequency=50.0e3, n_symbols=4),
)
def _psk8_mixer(name: str, params: dict) -> BuiltScenario:
    return _modulated_mixer_scenario(
        name, params, scheme_name="psk8", mixer_kind="switching"
    )


@register_scenario(
    "qam16_mixer",
    params=dict(
        lo_frequency=1.0e9, difference_frequency=10.0e3, n_symbols=8, rf_amplitude=1.0
    ),
    description="16-QAM I/Q stream through the ideal multiplier mixer",
    tags=("modulation", "mixer"),
    smoke=dict(lo_frequency=1.0e6, difference_frequency=25.0e3, n_symbols=4),
)
def _qam16_mixer(name: str, params: dict) -> BuiltScenario:
    return _modulated_mixer_scenario(name, params, scheme_name="qam16", mixer_kind="ideal")


@register_scenario(
    "ofdm_mixer",
    params=dict(
        lo_frequency=1.0e9,
        difference_frequency=10.0e3,
        n_subcarriers=4,
        rf_amplitude=1.0,
    ),
    description="One QPSK-loaded OFDM symbol through the ideal multiplier mixer",
    tags=("modulation", "mixer", "ofdm"),
    smoke=dict(lo_frequency=1.0e6, difference_frequency=25.0e3),
)
def _ofdm_mixer(name: str, params: dict) -> BuiltScenario:
    scheme = get_scheme("qpsk")
    n_subcarriers = int(params["n_subcarriers"])
    fd = float(params["difference_frequency"])
    period = 1.0 / fd
    bits = prbs_bits(7, n_subcarriers * scheme.bits_per_symbol)
    envelope_i, envelope_q, symbols = ofdm_envelopes(scheme, bits, n_subcarriers, period)
    mixer = ideal_multiplier_mixer(
        lo_frequency=float(params["lo_frequency"]),
        difference_frequency=fd,
        rf_amplitude=float(params["rf_amplitude"]),
        envelope=envelope_i,
        envelope_q=envelope_q,
    )
    # After the fd beat, subcarrier k reaches baseband at (k+1)*fd: the
    # slow-axis content tops out at n_subcarriers + 1 harmonics, plus one of
    # headroom for the mixer's own products.
    bandwidths = TimescaleBandwidths(
        fast_harmonics=_FAST_HARMONICS["ideal"], slow_harmonics=n_subcarriers + 2
    )

    def metrics(case: ScenarioCase, result) -> dict[str, float]:
        baseband = case_baseband(case, result)
        estimated = ofdm_demodulate(baseband, fd, n_subcarriers)
        return {
            "evm": error_vector_magnitude(estimated, symbols, allow_cyclic_shift=False),
            "subcarrier1_amplitude": _amplitude_at(baseband, 2.0 * fd),
            "dc_level": baseband.mean(),
        }

    case = ScenarioCase(
        label="ofdm_symbol",
        circuit=mixer.circuit,
        analysis="mpde",
        output_pos=mixer.output_pos,
        output_neg=mixer.output_neg,
        bandwidths=bandwidths,
        grid=recommend_grid(bandwidths),
        compute_metrics=metrics,
        scales=mixer.scales,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(frequency=2.0 * fd),
    )


@register_scenario(
    "prbs_balanced_mixer",
    params=dict(lo_frequency=450.0e6, difference_frequency=15.0e3, n_bits=8),
    description="PRBS-7 bit stream through the paper's balanced LO-doubling mixer",
    tags=("bitstream", "mixer", "paper"),
    smoke=dict(lo_frequency=2.0e6, difference_frequency=50.0e3, n_bits=4),
)
def _prbs_balanced_mixer(name: str, params: dict) -> BuiltScenario:
    fd = float(params["difference_frequency"])
    n_bits = int(params["n_bits"])
    bits = tuple(int(b) for b in _scenario_bits(n_bits))
    envelope = default_bit_envelope(1.0 / fd, bits=bits)
    mixer = balanced_lo_doubling_mixer(
        lo_frequency=float(params["lo_frequency"]),
        difference_frequency=fd,
        envelope=envelope,
    )
    bandwidths = TimescaleBandwidths.for_symbol_stream(
        n_bits, fast_harmonics=_FAST_HARMONICS["balanced"]
    )

    def metrics(case: ScenarioCase, result) -> dict[str, float]:
        baseband = case_baseband(case, result)
        return {
            **_bit_decision_metrics(baseband, bits),
            "baseband_fd_amplitude": _amplitude_at(baseband, fd),
            "dc_level": baseband.mean(),
        }

    case = ScenarioCase(
        label="prbs",
        circuit=mixer.circuit,
        analysis="mpde",
        output_pos=mixer.output_pos,
        output_neg=mixer.output_neg,
        bandwidths=bandwidths,
        grid=recommend_grid(bandwidths),
        compute_metrics=metrics,
        scales=mixer.scales,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(frequency=fd),
    )


@register_scenario(
    "multi_lo_receiver",
    params=dict(
        lo_frequency=450.0e6,
        difference_frequency=15.0e3,
        n_bits=4,
        filter_resistance=2.0e3,
    ),
    description=(
        "Receiver chain: LO fundamental drives the doubler, the doubled LO "
        "mixes the bit stream, an RC post-filter cleans the baseband"
    ),
    tags=("receiver", "mixer", "chain"),
    smoke=dict(lo_frequency=2.0e6, difference_frequency=50.0e3),
)
def _multi_lo_receiver(name: str, params: dict) -> BuiltScenario:
    from ..circuits.devices import Capacitor, Resistor

    fd = float(params["difference_frequency"])
    n_bits = int(params["n_bits"])
    bits = tuple(int(b) for b in _scenario_bits(n_bits))
    envelope = default_bit_envelope(1.0 / fd, bits=bits)
    mixer = balanced_lo_doubling_mixer(
        lo_frequency=float(params["lo_frequency"]),
        difference_frequency=fd,
        envelope=envelope,
    )
    # Baseband post-filter on each output rail: corner at twice the bit rate
    # passes the symbol transitions while stripping residual LO products.
    resistance = float(params["filter_resistance"])
    corner = 2.0 * n_bits * fd
    capacitance = 1.0 / (2.0 * math.pi * resistance * corner)
    ckt = mixer.circuit
    ckt.add(Resistor("rbb1", "outp", "bbp", resistance))
    ckt.add(Resistor("rbb2", "outn", "bbn", resistance))
    ckt.add(Capacitor("cbb1", "bbp", ckt.GROUND, capacitance))
    ckt.add(Capacitor("cbb2", "bbn", ckt.GROUND, capacitance))

    bandwidths = TimescaleBandwidths.for_symbol_stream(
        n_bits, fast_harmonics=_FAST_HARMONICS["balanced"]
    )

    def metrics(case: ScenarioCase, result) -> dict[str, float]:
        baseband = case_baseband(case, result)
        return {
            **_bit_decision_metrics(baseband, bits),
            "baseband_fd_amplitude": _amplitude_at(baseband, fd),
            "dc_level": baseband.mean(),
        }

    case = ScenarioCase(
        label="receive_chain",
        circuit=ckt,
        analysis="mpde",
        output_pos="bbp",
        output_neg="bbn",
        bandwidths=bandwidths,
        grid=recommend_grid(bandwidths),
        compute_metrics=metrics,
        scales=mixer.scales,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(frequency=fd),
    )


@register_scenario(
    "frequency_doubler",
    params=dict(lo_frequency=450.0e6),
    description="The balanced mixer's lower pair as a standalone 2x frequency doubler (PSS)",
    tags=("doubler", "pss"),
    smoke=dict(lo_frequency=2.0e6),
)
def _frequency_doubler(name: str, params: dict) -> BuiltScenario:
    doubler = lo_frequency_doubler(lo_frequency=float(params["lo_frequency"]))
    f1 = doubler.lo_frequency
    # Output content is harmonics of 2*f1 (plus residual odd lines the
    # balance cancels).  The hard-switched waveform converges slowly with
    # the collocation grid, so the doubler declares 16 fast harmonics — the
    # resulting 64-point grid keeps the discretisation error of the doubled
    # line well inside the cross-validation tolerance.
    bandwidths = TimescaleBandwidths(
        fast_harmonics=_FAST_HARMONICS["doubler"], slow_harmonics=1
    )

    def metrics(case: ScenarioCase, result) -> dict[str, float]:
        waveform = result.waveform(doubler.output)
        return {
            "fundamental_amplitude": _amplitude_at(waveform, f1),
            "doubled_amplitude": _amplitude_at(waveform, 2.0 * f1),
            "fourth_harmonic_amplitude": _amplitude_at(waveform, 4.0 * f1),
            "dc_level": waveform.mean(),
        }

    case = ScenarioCase(
        label="doubler_pss",
        circuit=doubler.circuit,
        analysis="pss",
        output_pos=doubler.output,
        output_neg=None,
        bandwidths=bandwidths,
        grid=recommend_grid(bandwidths),
        compute_metrics=metrics,
        period=doubler.period,
    )
    return BuiltScenario(
        name=name,
        params=params,
        cases=(case,),
        cross_validation=CrossValidationPlan(
            frequency=2.0 * f1, points_per_cycle=128, settle_periods=6.0
        ),
    )


@register_scenario(
    "swept_lo_conversion_gain",
    params=dict(
        lo_frequency=1.0e9,
        difference_frequency=10.0e3,
        rf_amplitude=0.5,
        sweep_ratios=(0.8, 1.0, 1.25),
    ),
    description="Conversion gain of the ideal multiplier mixer swept across LO frequencies (HB)",
    tags=("sweep", "mixer", "hb"),
    smoke=dict(lo_frequency=1.0e6, difference_frequency=25.0e3),
)
def _swept_lo_conversion_gain(name: str, params: dict) -> BuiltScenario:
    fd = float(params["difference_frequency"])
    rf_amplitude = float(params["rf_amplitude"])
    bandwidths = TimescaleBandwidths(fast_harmonics=3, slow_harmonics=3)

    def make_case(ratio: float) -> ScenarioCase:
        mixer = ideal_multiplier_mixer(
            lo_frequency=float(params["lo_frequency"]) * float(ratio),
            difference_frequency=fd,
            rf_amplitude=rf_amplitude,
            envelope=ConstantEnvelope(),
        )

        def metrics(case: ScenarioCase, result) -> dict[str, float]:
            summary = conversion_metrics(
                result.mpde, case.output_pos, None, rf_amplitude
            )
            return {
                "gain": summary.gain,
                "gain_db": summary.gain_db,
                "baseband_amplitude": summary.baseband_amplitude,
                "distortion": summary.distortion,
            }

        return ScenarioCase(
            label=f"lo_x{float(ratio):g}",
            circuit=mixer.circuit,
            analysis="hb",
            output_pos=mixer.output_pos,
            output_neg=mixer.output_neg,
            bandwidths=bandwidths,
            grid=recommend_grid(bandwidths),
            compute_metrics=metrics,
            scales=mixer.scales,
        )

    cases = tuple(make_case(ratio) for ratio in params["sweep_ratios"])

    def aggregate(per_case: dict[str, dict[str, float]]) -> dict[str, float]:
        gains = [per_case[case.label]["gain"] for case in cases]
        return {
            "gain_mean": float(np.mean(gains)),
            "gain_flatness": float(max(gains) / min(gains)),
        }

    return BuiltScenario(
        name=name,
        params=params,
        cases=cases,
        cross_validation=CrossValidationPlan(frequency=fd),
        aggregate=aggregate,
    )


@register_scenario(
    "ip3_sweep",
    params=dict(
        lo_frequency=1.0e9,
        difference_frequency=10.0e3,
        rf_amplitude=0.1,
        amplitude_ratios=(0.5, 1.0, 2.0),
        source_resistance=100.0,
        linear_conductance=5.0e-3,
        cubic_coefficient=2.5e-2,
    ),
    description=(
        "Two-tone third-order intercept sweep: a cubic RF front end "
        "(single-sideband tones at 3*fd and 4*fd) downconverted by the "
        "multiplier mixer, amplitude-swept"
    ),
    tags=("sweep", "mixer", "distortion"),
    smoke=dict(lo_frequency=2.0e6, difference_frequency=50.0e3),
)
def _ip3_sweep(name: str, params: dict) -> BuiltScenario:
    from ..circuits import Circuit
    from ..circuits.devices import Resistor, VoltageSource
    from ..circuits.devices.behavioral import (
        MultiplierCurrentSource,
        PolynomialConductance,
    )
    from ..core import ShearedTimeScales
    from ..rf.mixers import _rf_stimulus
    from ..signals import SinusoidStimulus

    lo_frequency = float(params["lo_frequency"])
    fd = float(params["difference_frequency"])
    period = 1.0 / fd
    base_amplitude = float(params["rf_amplitude"])
    ratios = tuple(float(r) for r in params["amplitude_ratios"])
    # Single-sideband I/Q two-tone: complex envelope lines at 3*fd and 4*fd
    # with no image, so after the fd carrier beat the real baseband carries
    # the fundamentals at bins 4 and 5 only.  The cubic element contributes
    # |env|^2 * env products: IM3 lands cleanly at bins 3 (2*fa - fb) and 6
    # (2*fb - fa) with no second-order content anywhere near them — the
    # front end has no square term and the mixer itself is bilinear.
    envelope_i = FourierEnvelope(period, {3: 0.5, 4: 0.5}, part="real")
    envelope_q = FourierEnvelope(period, {3: 0.5, 4: 0.5}, part="imag")
    # Fast content: LO line, carrier, and the cubic's 3rd carrier harmonic;
    # slow content tops out at the 5th-order products around bin 7.
    bandwidths = TimescaleBandwidths(fast_harmonics=4, slow_harmonics=8)
    scales = ShearedTimeScales.from_frequencies(
        lo_frequency, lo_frequency - fd, lo_multiple=1
    )

    def make_case(ratio: float) -> ScenarioCase:
        amplitude = base_amplitude * ratio
        ckt = Circuit(f"ip3 front end (A={amplitude:g})")
        ckt.add(VoltageSource("vlo", "lo", ckt.GROUND, SinusoidStimulus(1.0, lo_frequency)))
        ckt.add(
            VoltageSource(
                "vrf",
                "rfsrc",
                ckt.GROUND,
                _rf_stimulus(
                    lo_frequency - fd,
                    amplitude,
                    envelope_i,
                    bias=0.0,
                    phase=0.0,
                    envelope_q=envelope_q,
                ),
            )
        )
        ckt.add(Resistor("rs", "rfsrc", "rfin", float(params["source_resistance"])))
        ckt.add(
            PolynomialConductance(
                "gnl",
                "rfin",
                ckt.GROUND,
                (float(params["linear_conductance"]), 0.0, float(params["cubic_coefficient"])),
            )
        )
        ckt.add(
            MultiplierCurrentSource(
                "mix", ckt.GROUND, "out", "lo", ckt.GROUND, "rfin", ckt.GROUND, gain=1e-3
            )
        )
        ckt.add(Resistor("rload", "out", ckt.GROUND, 1e3))

        def metrics(case: ScenarioCase, result) -> dict[str, float]:
            baseband = case_baseband(case, result)
            return {
                "fund_low_amplitude": _amplitude_at(baseband, 4.0 * fd),
                "fund_high_amplitude": _amplitude_at(baseband, 5.0 * fd),
                "im3_low_amplitude": _amplitude_at(baseband, 3.0 * fd),
                "im3_high_amplitude": _amplitude_at(baseband, 6.0 * fd),
                "rf_amplitude": amplitude,
            }

        return ScenarioCase(
            label=f"a{amplitude:g}",
            circuit=ckt,
            analysis="mpde",
            output_pos="out",
            output_neg=None,
            bandwidths=bandwidths,
            grid=recommend_grid(bandwidths),
            compute_metrics=metrics,
            scales=scales,
        )

    cases = tuple(make_case(ratio) for ratio in ratios)

    def aggregate(per_case: dict[str, dict[str, float]]) -> dict[str, float]:
        ordered = [per_case[case.label] for case in cases]
        lowest, middle, highest = ordered[0], ordered[len(ordered) // 2], ordered[-1]
        # Amplitude-domain IP3 extrapolation, referred to the per-tone input
        # amplitude (each envelope tone carries half the RF amplitude): the
        # fundamental grows as A while IM3 grows as A^3, so the two lines
        # intercept at A * sqrt(fund / im3).
        tone_amplitude = 0.5 * middle["rf_amplitude"]
        iip3 = tone_amplitude * math.sqrt(
            middle["fund_high_amplitude"] / max(middle["im3_high_amplitude"], 1e-30)
        )
        slope = math.log(
            max(highest["im3_high_amplitude"], 1e-30)
            / max(lowest["im3_high_amplitude"], 1e-30)
        ) / math.log(highest["rf_amplitude"] / lowest["rf_amplitude"])
        return {"iip3_tone_amplitude": iip3, "im3_slope": slope}

    return BuiltScenario(
        name=name,
        params=params,
        cases=cases,
        cross_validation=CrossValidationPlan(frequency=4.0 * fd),
        aggregate=aggregate,
    )
